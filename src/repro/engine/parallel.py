"""The sharded data plane: run a certified :class:`ShardPlan` on
multiple cores with epoch-synchronized cut-edge exchange.

:class:`ShardedSimulator` partitions the deployed operator DAG by the
certified shard plan (``StreamGlobe.shard_plan()``, PR 6), packs the
finest certified shards into *cells* — one per worker — and runs each
cell's slice of the DAG in its own ``multiprocessing`` worker (forked;
an in-process fallback covers single-cell plans, unpicklable payloads
and single-core hosts).  Streams whose parent or subscriber lives in a
foreign cell get a *proxy* node in the consuming cell, fed exclusively
by serialized item batches exchanged at epoch barriers — the runtime
realization of the plan's cut edges, honoring the certified
``epoch_lag`` (a batch crossing ``k`` cuts is delivered ``k`` exchange
epochs after production).

Determinism argument (DESIGN.md §12) in brief: every engine operator
is a per-item push over its own stream's FIFO, multi-input
subscriptions buffer per input until ``finish()``, and all counters
are integers — so totals depend only on per-stream input *sequences*,
never on cross-stream interleaving or batch segmentation.  The merge
then replays the per-cell integer counters through
:func:`repro.engine.accounting.replay_metrics` in the exact sequential
accounting order (retired first, then Kahn order, then registration
order), so the resulting :class:`RunMetrics` is byte-identical to the
sequential executor — including under fault schedules, where faults
apply only at *drained* barriers (no in-flight exchange) and the plan
is re-certified and re-partitioned on every ``Network.version`` bump.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
import multiprocessing
import os
import pickle
import traceback
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..network.topology import Network
from ..obs.merge import SegmentShipper, SegmentStore
from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.timeseries import snapshot_delta
from ..xmlkit import Element
from .accounting import DeliveryCounters, RetiredSnapshot, StreamCounters, replay_metrics
from .columnar import Batch as EngineBatch
from .columnar import batch_bytes, columnar_mode
from .executor import (
    ExecutionError,
    ItemGenerator,
    StreamSimulator,
    _Gate,
    _MultiDelivery,
    _StreamNode,
    topological_streams,
)
from .fanout import _Gauge, group_pipelines
from .metrics import RunMetrics

if TYPE_CHECKING:  # avoid runtime cycles with repro.sharing / repro.analysis
    from ..analysis.shards import RuntimePartition, ShardPlan
    from ..faults.schedule import FaultSchedule
    from ..obs.slo import QuerySLO
    from ..sharing.plan import Deployment, InstalledStream, RegisteredQuery

__all__ = ["ShardedSimulator"]

#: One exchanged unit: ``(stream_id, items)`` in producer emission
#: order; the payload is a plain item list or a pickle-stable
#: :class:`~repro.engine.columnar.ColumnBatch` (which ships its decoded
#: rows and re-encodes on arrival).
Batch = Tuple[str, EngineBatch]


def _strip_parent(stream: "InstalledStream") -> "InstalledStream":
    """A proxy copy of ``stream``: same id/route/content, no parent.

    Proxy nodes are local DAG roots fed only by the exchange — keeping
    the parent link would double-feed them wherever the parent happens
    to be co-resident.
    """
    return dataclasses.replace(stream, parent_id=None)


class _SliceDeployment:
    """The duck-typed deployment slice a cell runtime executes.

    Only the two attributes the inherited plan builder reads."""

    __slots__ = ("streams", "queries")

    def __init__(
        self,
        streams: Dict[str, "InstalledStream"],
        queries: Dict[str, "RegisteredQuery"],
    ) -> None:
        self.streams = streams
        self.queries = queries


# ----------------------------------------------------------------------
# Cell runtime: one worker's slice of the DAG
# ----------------------------------------------------------------------
class _CellRuntime(StreamSimulator):
    """One cell's pump loop: the sequential executor minus accounting.

    Reuses the parent class's plan builder, pump, reconcile helpers and
    source draining verbatim; overrides construction (no net, no
    recorder, no schedule — the parent process owns all of those) and
    :meth:`_pump` (to copy exported batches into the per-consumer
    outbox).  All accounting state stays as plain integer counters,
    shipped to the parent as :meth:`state` snapshots and replayed there.
    """

    # pylint: disable=super-init-not-called
    def __init__(
        self,
        cell: int,
        streams: Sequence["InstalledStream"],
        proxies: Set[str],
        exports: Dict[str, Tuple[int, ...]],
        queries: Dict[str, "RegisteredQuery"],
        generators: Dict[str, ItemGenerator],
        duration: float,
        max_items_per_source: Optional[int],
        batch_size: int,
        capture_results: bool,
        recorder: Any = NULL_RECORDER,
    ) -> None:
        self.cell = cell
        self.net = None  # type: ignore[assignment]  # accounting is parent-side
        self.deployment = _SliceDeployment(  # type: ignore[assignment]
            {stream.stream_id: stream for stream in streams}, dict(queries)
        )
        self.generators = generators
        self.duration = duration
        self.max_items = max_items_per_source
        self.batch_size = batch_size
        self.schedule = None
        self.repair = None
        #: Traced runs hand each cell a live recorder pinned to the
        #: parent's timeline; its state ships back as trace segments
        #: (:mod:`repro.obs.merge`).  Untraced cells keep the no-op
        #: singleton and record nothing.
        self.recorder = recorder
        self.epoch_samples = 0
        self.peak_live_items = 0
        #: Operator batches time into per-operator latency histograms
        #: (histogram only — item counts are billed parent-side from
        #: the partition-invariant operator totals, DESIGN.md §15).
        self._op_timer = self._make_op_timer() if recorder.enabled else None
        self._shipper = (
            SegmentShipper(recorder, cell) if recorder.enabled else None
        )
        # Workers re-resolve REPRO_COLUMNAR from their (inherited)
        # environment, so every cell agrees with the parent's mode.
        self._columnar_mode = columnar_mode()

        self._proxies = set(proxies)
        self._exports: Dict[str, Tuple[int, ...]] = dict(exports)
        self._outbox: Dict[int, List[Batch]] = {}
        self._captured: Dict[str, List[Element]] = {}
        self.capture = self._capture_hook if capture_results else None

        self._feeds: Dict[str, List[Tuple[str, Callable]]] = {}
        nodes, singles, multis = self._build_plan(list(streams))
        gauge = _Gauge()
        for delivery in multis.values():
            delivery.gauge = gauge
        self._gauge = gauge
        self._deliveries: Dict[str, object] = {
            record.name: singles.get(record.name) or multis[record.name]
            for record in queries.values()
        }
        self._retired: List[RetiredSnapshot] = []
        self._gates: List[_Gate] = []
        self._cell_gates: Dict[int, _Gate] = {}
        self._sources = [
            stream.stream_id
            for stream in streams
            if stream.is_original and stream.stream_id not in self._proxies
        ]
        self._produced = {stream_id: 0 for stream_id in self._sources}
        self._faults_applied = 0
        self._source_items_lost = 0
        self._recovery_time_s = 0.0
        self._queries_repaired = 0
        #: Recovery-gate drops by hosted query (the inherited
        #: :meth:`StreamSimulator._gated` wrapper fills it in).
        self._query_lost: Dict[str, int] = {}

    def _capture_hook(self, name: str, item: Element) -> None:
        self._captured.setdefault(name, []).append(item)

    # ------------------------------------------------------------------
    # Pump override: copy cut-edge traffic into the outbox
    # ------------------------------------------------------------------
    def _pump(self, node: _StreamNode, batch: EngineBatch, gauge: _Gauge) -> None:
        consumers = self._exports.get(node.stream.stream_id)
        if consumers:
            for consumer in consumers:
                self._outbox.setdefault(consumer, []).append(
                    (node.stream.stream_id, batch)
                )
        super()._pump(node, batch, gauge)

    # ------------------------------------------------------------------
    # Worker protocol
    # ------------------------------------------------------------------
    def step(
        self, until: float, inbound: Sequence[Batch], want_state: bool
    ) -> Tuple[Dict[int, List[Batch]], Optional[Dict[str, Any]]]:
        """Deliver ``inbound`` proxy batches, pump own sources to
        ``until``, and hand back the outbox accumulated while doing so.

        ``until`` at or before the sources' clocks makes this an
        exchange-only round — the drain-to-quiescence primitive."""
        recorder = self.recorder
        if not recorder.enabled:
            return self._step(until, inbound, want_state)
        with recorder.span(
            "cell.step", until=until, inbound_batches=len(inbound)
        ):
            return self._step(until, inbound, want_state)

    def _step(
        self, until: float, inbound: Sequence[Batch], want_state: bool
    ) -> Tuple[Dict[int, List[Batch]], Optional[Dict[str, Any]]]:
        gauge = self._gauge
        nodes = self._nodes
        for stream_id, batch in inbound:
            node = nodes.get(stream_id)
            if node is not None:
                self._pump(node, batch, gauge)
        self._pump_all_until(until, gauge)
        outbox = self._outbox
        self._outbox = {}
        return outbox, (self.state() if want_state else None)

    def open_gate(self, gate_id: int) -> None:
        self._cell_gates[gate_id].open = True

    def counters(self) -> Dict[str, int]:
        """Items produced per *owned* stream (proxies mirror a foreign
        count and are excluded)."""
        return {
            stream_id: node.produced_count
            for stream_id, node in self._nodes.items()
            if stream_id not in self._proxies
        }

    def state(self) -> Dict[str, Any]:
        """This cell's accumulated accounting counters, as plain data."""
        counters = {
            stream_id: (
                node.produced_count,
                node.produced_bytes,
                node.duplicate_base,
                self._stage_counts(node),
                node.repair_added,
            )
            for stream_id, node in self._nodes.items()
            if stream_id not in self._proxies
        }
        deliveries: Dict[str, Tuple[bool, int, int]] = {}
        for name, delivery in self._deliveries.items():
            if isinstance(delivery, _MultiDelivery):
                deliveries[name] = (True, delivery.total_inputs, delivery.results)
            else:
                deliveries[name] = (
                    False,
                    delivery.inputs,  # type: ignore[attr-defined]
                    delivery.results,  # type: ignore[attr-defined]
                )
        state = {
            "counters": counters,
            "retired": list(self._retired),
            "deliveries": deliveries,
            "gate_lost": {
                gate_id: gate.lost for gate_id, gate in self._cell_gates.items()
            },
            "query_lost": dict(self._query_lost),
            "source_lost": self._source_items_lost,
            "operator_totals": self._operator_totals(),
            "inflight": self._gauge.current,
            "window_peak": self._gauge.take_window_peak(),
            "peak": self._gauge.peak,
        }
        if self._shipper is not None:
            # The trace cut happens last, so everything the barrier's
            # own work recorded ships with this very state message.
            state["trace"] = self._shipper.take()
        return state

    def finish_cell(self) -> Dict[str, Any]:
        recorder = self.recorder
        if recorder.enabled:
            with recorder.span("cell.finish"):
                self._finish_deliveries()
        else:
            self._finish_deliveries()
        self.peak_live_items = self._gauge.peak
        state = self.state()
        state["captured"] = self._captured
        return state

    def _finish_deliveries(self) -> None:
        for delivery in self._deliveries.values():
            if isinstance(delivery, _MultiDelivery):
                delivery.finish()

    # ------------------------------------------------------------------
    # Reconcile: apply the parent's plan diff to this cell
    # ------------------------------------------------------------------
    def apply_reconcile(self, msg: Dict[str, Any]) -> None:
        """Mirror :meth:`StreamSimulator._reconcile` on this cell's
        slice, from the parent's pre-computed diff.

        Stale nodes retire in this cell's node order (owned ones are
        snapshotted *before* any detach, so a retired child still reads
        its proxy parent's post-drain count for ``duplicate_count``);
        adds arrive parent-before-child with proxies carrying the
        producing cell's post-drain ``base_count``, reproducing the
        sequential ``duplicate_base`` pin exactly.
        """
        recorder = self.recorder
        if recorder.enabled:
            with recorder.span(
                "cell.reconcile",
                stale=len(msg["stale"]),
                add=len(msg["add"]),
                rewire=len(msg["rewire"]),
            ):
                self._apply_reconcile(msg)
        else:
            self._apply_reconcile(msg)

    def _apply_reconcile(self, msg: Dict[str, Any]) -> None:
        nodes = self._nodes
        stale_set = set(msg["stale"])
        stale = [stream_id for stream_id in nodes if stream_id in stale_set]
        for stream_id in stale:
            if stream_id not in self._proxies:
                self._retired.append(self._snapshot(nodes[stream_id]))
        for stream_id in stale:
            self._detach(nodes[stream_id])
        for stream_id in stale:
            del nodes[stream_id]
            self._proxies.discard(stream_id)
            self._exports.pop(stream_id, None)
            self.deployment.streams.pop(stream_id, None)

        pipelined: Dict[str, List["InstalledStream"]] = {}
        for stream, is_proxy, base_count in msg["add"]:
            node = _StreamNode(stream)
            nodes[stream.stream_id] = node
            self.deployment.streams[stream.stream_id] = stream
            if is_proxy:
                node.produced_count = base_count
                self._proxies.add(stream.stream_id)
                continue
            node.repair_added = True
            if stream.parent_id is None:
                continue  # re-installed original (its home rejoined)
            parent_node = nodes[stream.parent_id]
            node.duplicate_base = parent_node.produced_count
            if stream.pipeline:
                pipelined.setdefault(stream.parent_id, []).append(stream)
            else:
                parent_node.relay_children.append(node)
        # Like the sequential reconcile: repair-created pipelines share
        # prefixes among themselves but never join a surviving trie.
        for parent_id, children in pipelined.items():
            parent_node = nodes[parent_id]
            groups = group_pipelines(
                [
                    (child.stream_id, child.content.item_path, child.pipeline)
                    for child in children
                ]
            )
            parent_node.trie_groups = parent_node.trie_groups + groups
            for _, _, stage_paths in groups:
                for stream_id, stage_path in stage_paths.items():
                    nodes[stream_id].stage_path = stage_path

        self._exports.update(msg["exports"])
        for gate_id, is_open in msg["gates"]:
            gate = _Gate(open_at=0.0)
            gate.open = is_open
            self._gates.append(gate)
            self._cell_gates[gate_id] = gate
        for name in msg["park"]:
            self._remove_feeds(name)
        for name, record, gate_id in msg["rewire"]:
            delivery = self._deliveries.get(name)
            if delivery is None:
                continue  # query hosted in another cell
            self._remove_feeds(name)
            delivery.record = record  # type: ignore[attr-defined]
            self._attach_feeds(name, delivery, gated_by=self._cell_gates[gate_id])


# ----------------------------------------------------------------------
# Worker backends
# ----------------------------------------------------------------------
def _error_payload(exc: BaseException) -> Dict[str, str]:
    """A worker crash as structured data, so the parent can both raise
    a readable :class:`ExecutionError` and record a machine-parseable
    ``cell.error`` trace event (instead of a string-only traceback)."""
    return {
        "exc_type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


def _worker_main(conn: Any, runtime: _CellRuntime) -> None:
    """The forked worker loop: execute protocol messages until stopped."""
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            except BaseException as exc:  # noqa: BLE001 - bad payload
                # A complete message arrived but failed to unpickle;
                # answer it with the error so the parent can report the
                # cause instead of a bare "worker died".
                conn.send(("error", _error_payload(exc)))
                continue
            op = msg[0]
            if op == "stop":
                break
            try:
                payload: Any = None
                if op == "step":
                    payload = runtime.step(msg[1], msg[2], msg[3])
                elif op == "state":
                    payload = runtime.state()
                elif op == "counters":
                    payload = runtime.counters()
                elif op == "open_gate":
                    runtime.open_gate(msg[1])
                elif op == "reconcile":
                    runtime.apply_reconcile(msg[1])
                elif op == "finish":
                    payload = runtime.finish_cell()
                else:
                    raise ExecutionError(f"unknown worker op {op!r}")
                conn.send(("ok", payload))
            except BaseException as exc:  # noqa: BLE001 - ship to parent
                conn.send(("error", _error_payload(exc)))
    except EOFError:
        pass
    finally:
        conn.close()


class _InlineCell:
    """In-process backend: executes each message synchronously."""

    __slots__ = ("runtime", "_result")

    def __init__(self, runtime: _CellRuntime) -> None:
        self.runtime = runtime
        self._result: Any = None

    def submit(self, msg: Tuple[Any, ...]) -> None:
        op = msg[0]
        runtime = self.runtime
        if op == "step":
            self._result = runtime.step(msg[1], msg[2], msg[3])
        elif op == "state":
            self._result = runtime.state()
        elif op == "counters":
            self._result = runtime.counters()
        elif op == "open_gate":
            runtime.open_gate(msg[1])
            self._result = None
        elif op == "reconcile":
            runtime.apply_reconcile(msg[1])
            self._result = None
        elif op == "finish":
            self._result = runtime.finish_cell()
        else:
            raise ExecutionError(f"unknown worker op {op!r}")

    def result(self) -> Any:
        result, self._result = self._result, None
        return result

    def close(self) -> None:
        return None


class _ProcessCell:
    """Forked-process backend: one worker per cell, message-pipe driven.

    Under the fork start method the runtime (generators, compiled
    pipelines, UDF closures) is inherited by memory copy — only the
    protocol messages (exchange batches, counter states, reconcile
    diffs) are ever pickled.
    """

    __slots__ = ("_conn", "_proc", "_shard", "_recorder")

    def __init__(
        self,
        ctx: Any,
        runtime: _CellRuntime,
        shard: int = 0,
        recorder: Any = NULL_RECORDER,
    ) -> None:
        self._shard = shard
        self._recorder = recorder
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main, args=(child, runtime), daemon=True
        )
        self._proc.start()
        child.close()

    def submit(self, msg: Tuple[Any, ...]) -> None:
        self._conn.send(msg)

    def result(self) -> Any:
        try:
            status, payload = self._conn.recv()
        except EOFError as exc:
            if self._recorder.enabled:
                self._recorder.event(
                    "cell.error",
                    shard=self._shard,
                    exc_type="WorkerDied",
                    message="parallel worker died",
                    traceback="",
                )
            raise ExecutionError("parallel worker died") from exc
        if status == "error":
            if isinstance(payload, dict):
                if self._recorder.enabled:
                    self._recorder.event(
                        "cell.error", shard=self._shard, **payload
                    )
                raise ExecutionError(
                    "parallel worker failed: {exc_type}: {message}\n"
                    "{traceback}".format(**payload)
                )
            raise ExecutionError(f"parallel worker failed:\n{payload}")
        return payload

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (OSError, ValueError):
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
        self._conn.close()


# ----------------------------------------------------------------------
# The sharded executor
# ----------------------------------------------------------------------
class ShardedSimulator:
    """Execute a deployment across shard-plan cells, merging to the
    sequential executor's exact :class:`RunMetrics`.

    Parameters mirror :class:`StreamSimulator` plus:

    plan:
        The certified :class:`~repro.analysis.ShardPlan` to partition
        by.  Uncertified plans (or ≤1 resulting cell) delegate to the
        sequential executor.
    workers:
        Worker-cell budget; the certified shards are packed into at
        most this many cells (:func:`partition_for_workers`).
    replan:
        Zero-argument callback returning a fresh certified plan after
        a topology change — ``lambda: system.shard_plan()``.  Defaults
        to re-running :func:`~repro.analysis.certify_shards` on the
        (repaired) deployment.
    mode:
        ``"process"`` (forked workers), ``"inline"`` (in-process cell
        loop — same partitioning, exchange and merge, no concurrency),
        or ``"auto"``: process when fork is available, the payload
        pickles and the host has >1 core, else inline.
    exchange_epochs:
        Number of evenly spaced exchange barriers; cut-edge batches
        produced in one exchange epoch are delivered at its end (the
        certified ``epoch_lag`` contract).  Fault and recovery
        boundaries always add their own (drained) barriers.
    rebalancer:
        Optional :class:`~repro.sharing.rebalance.Rebalancer`.  When
        set, every sampling boundary becomes a *drained* barrier, the
        per-cell counters are merged and replayed into one global
        epoch snapshot (identical to the sequential executor's — the
        drained counters replay byte-for-byte), and the snapshot is
        offered to the rebalancer after the boundary's faults.  A
        migration reconciles every cell through the same diff churn
        repair uses, with an *open* delivery gate — make-before-break
        at a quiescent barrier — and re-certifies the shard plan.

    After :meth:`run`:

    * ``peak_live_items_per_shard`` — per-cell in-flight peaks (their
      max, not their sum, is ``peak_live_items``: cells peak at
      different epochs, so the sum overstates peak memory);
    * ``exchange_batches/items/bytes`` and ``exchange_pairs`` — the
      cut-edge traffic volume;
    * ``mode_used``, ``workers_used``, ``partition_conflicts``.
    """

    def __init__(
        self,
        net: Network,
        deployment: "Deployment",
        generators: Dict[str, ItemGenerator],
        duration: float,
        plan: "ShardPlan",
        workers: int,
        max_items_per_source: Optional[int] = None,
        batch_size: int = 64,
        schedule: Optional["FaultSchedule"] = None,
        repair: Optional[Callable[..., object]] = None,
        replan: Optional[Callable[[], "ShardPlan"]] = None,
        capture: Optional[Callable[[str, Element], None]] = None,
        recorder: Optional[object] = None,
        epoch_samples: int = 8,
        exchange_epochs: int = 8,
        mode: str = "auto",
        rebalancer: Optional[object] = None,
    ) -> None:
        if duration <= 0:
            raise ExecutionError("duration must be positive")
        if workers < 1:
            raise ExecutionError("workers must be >= 1")
        if mode not in ("auto", "inline", "process"):
            raise ExecutionError(f"unknown parallel mode {mode!r}")
        self.net = net
        self.deployment = deployment
        self.generators = generators
        self.duration = duration
        self.plan = plan
        self.workers = workers
        self.max_items = max_items_per_source
        self.batch_size = batch_size
        self.schedule = schedule
        self.repair = repair
        self.replan = replan
        self.capture = capture
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.epoch_samples = epoch_samples
        self.exchange_epochs = max(1, exchange_epochs)
        self.mode = mode
        self.rebalancer = rebalancer

        self.mode_used = "sequential"
        self.workers_used = 1
        self.partition_conflicts = 0
        self.peak_live_items = 0
        self.peak_live_items_per_shard: Dict[int, int] = {0: 0}
        self.exchange_batches = 0
        self.exchange_items = 0
        self.exchange_bytes = 0
        self.exchange_pairs: Dict[Tuple[int, int], int] = {}
        self.query_lags: Dict[str, int] = {}
        #: Latest per-query SLO records (refreshed at every observed
        #: barrier; the live ``/slo.json`` endpoint reads this without
        #: a worker round-trip).
        self.last_query_slos: List["QuerySLO"] = []
        self._query_migrations: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        partition = self._partition()
        if partition is None or partition.cell_count <= 1:
            return self._run_sequential()
        self.query_lags = partition.query_lags(self.deployment)
        self._build(partition)
        backend = self._resolve_mode()
        self.mode_used = backend
        self.workers_used = partition.cell_count
        if backend == "process":
            ctx = multiprocessing.get_context("fork")
            self._cells: List[Any] = [
                _ProcessCell(ctx, runtime, shard=index, recorder=self.recorder)
                for index, runtime in enumerate(self._runtimes)
            ]
        else:
            self._cells = [_InlineCell(runtime) for runtime in self._runtimes]
        try:
            return self._run_cells()
        finally:
            for cell in self._cells:
                cell.close()

    # ------------------------------------------------------------------
    # Fallbacks and mode resolution
    # ------------------------------------------------------------------
    def _partition(self) -> Optional["RuntimePartition"]:
        if not self.plan.certified or self.workers <= 1:
            return None
        from ..analysis.shards import partition_for_workers

        return partition_for_workers(self.plan, self.deployment, self.workers)

    def _run_sequential(self) -> RunMetrics:
        simulator = StreamSimulator(
            self.net,
            self.deployment,
            self.generators,
            self.duration,
            max_items_per_source=self.max_items,
            batch_size=self.batch_size,
            schedule=self.schedule,
            repair=self.repair,
            capture=self.capture,
            recorder=self.recorder,
            epoch_samples=self.epoch_samples,
            rebalancer=self.rebalancer,
        )
        metrics = simulator.run()
        self.mode_used = "sequential"
        self.workers_used = 1
        self.peak_live_items = simulator.peak_live_items
        self.peak_live_items_per_shard = {0: simulator.peak_live_items}
        self.last_query_slos = simulator.last_query_slos
        return metrics

    def _resolve_mode(self) -> str:
        if self.mode == "inline":
            return "inline"
        fork_ok = "fork" in multiprocessing.get_all_start_methods()
        if self.mode == "process":
            if not fork_ok:
                raise ExecutionError(
                    "process mode requires the fork start method"
                )
            if not self._payload_pickles():
                raise ExecutionError(
                    "process mode requires picklable streams/queries/items"
                )
            return "process"
        # auto
        if not fork_ok or (os.cpu_count() or 1) <= 1:
            return "inline"
        return "process" if self._payload_pickles() else "inline"

    def _payload_pickles(self) -> bool:
        """Probe the IPC payload types: exchanged batches and reconcile
        diffs carry streams, query records and frozen items."""
        try:
            pickle.dumps(
                (
                    list(self.deployment.streams.values()),
                    list(self.deployment.queries.values()),
                )
            )
        except Exception:  # noqa: BLE001 - any failure means fall back
            return False
        return True

    # ------------------------------------------------------------------
    # Build: slice the deployment into cells
    # ------------------------------------------------------------------
    def _build(self, partition: "RuntimePartition") -> None:
        order = topological_streams(self.deployment)
        ncells = partition.cell_count
        node_cell = partition.as_mapping()
        #: Live node → cell map, extended as repairs add nodes.
        self._node_cell = dict(node_cell)
        #: Sticky history so re-installed nodes return to their cell.
        self._cell_history = dict(node_cell)
        self._ncells = ncells
        #: Sequential-executor mirror: same insertion order as its
        #: nodes dict, so the retire order matches exactly.
        self._mirror: Dict[str, "InstalledStream"] = {
            stream.stream_id: stream for stream in order
        }
        self._owner: Dict[str, int] = {
            stream.stream_id: self._node_cell.get(stream.origin_node, 0)
            for stream in order
        }
        #: Retirement sequence as ``(stream_id, owner_cell)`` — the
        #: global accounting order the merge re-establishes.
        self._retired_order: List[Tuple[str, int]] = []
        self._records: Dict[str, "RegisteredQuery"] = dict(
            self.deployment.queries
        )
        self._query_cell = {
            name: self._node_cell.get(record.subscriber_node, 0)
            for name, record in self._records.items()
        }

        cell_streams: List[List["InstalledStream"]] = [[] for _ in range(ncells)]
        cell_proxies: List[Set[str]] = [set() for _ in range(ncells)]
        self._cell_has: List[Set[str]] = [set() for _ in range(ncells)]
        #: sid → consumer cells needing its items via the exchange.
        self._consumers: Dict[str, Set[int]] = {}

        def ensure_proxy(cell: int, stream_id: str) -> None:
            if stream_id in self._cell_has[cell]:
                return
            stream = self._mirror[stream_id]
            cell_streams[cell].append(_strip_parent(stream))
            cell_proxies[cell].add(stream_id)
            self._cell_has[cell].add(stream_id)
            self._consumers.setdefault(stream_id, set()).add(cell)

        for stream in order:
            owner = self._owner[stream.stream_id]
            if stream.parent_id is not None and (
                self._owner[stream.parent_id] != owner
            ):
                ensure_proxy(owner, stream.parent_id)
            cell_streams[owner].append(stream)
            self._cell_has[owner].add(stream.stream_id)
        cell_queries: List[Dict[str, "RegisteredQuery"]] = [
            {} for _ in range(ncells)
        ]
        for name, record in self._records.items():
            host = self._query_cell[name]
            for _, delivered_id in record.delivered:
                if delivered_id in self._mirror and (
                    delivered_id not in self._cell_has[host]
                ):
                    ensure_proxy(host, delivered_id)
            cell_queries[host][name] = record

        cell_exports: List[Dict[str, Tuple[int, ...]]] = [
            {} for _ in range(ncells)
        ]
        for stream_id, consumers in self._consumers.items():
            cell_exports[self._owner[stream_id]][stream_id] = tuple(
                sorted(consumers)
            )

        self._runtimes = [
            _CellRuntime(
                cell=index,
                streams=cell_streams[index],
                proxies=cell_proxies[index],
                exports=cell_exports[index],
                queries=cell_queries[index],
                generators=self.generators,
                duration=self.duration,
                max_items_per_source=self.max_items,
                batch_size=self.batch_size,
                capture_results=self.capture is not None,
                # Cell recorders are built pre-fork, pinned to the
                # parent's timeline so shipped span times merge onto
                # one axis without adjustment.
                recorder=(
                    Recorder(origin=self.recorder)
                    if self.recorder.enabled
                    else NULL_RECORDER
                ),
            )
            for index in range(ncells)
        ]

    # ------------------------------------------------------------------
    # Barrier loop
    # ------------------------------------------------------------------
    def _run_cells(self) -> RunMetrics:
        duration = self.duration
        recorder = self.recorder
        rebalancer = self.rebalancer
        events = (
            [e for e in self.schedule.events() if e.time < duration]
            if self.schedule
            else []
        )
        observing = recorder.enabled or rebalancer is not None
        samples: List[float] = []
        if observing and self.epoch_samples > 0:
            step = duration / self.epoch_samples
            samples = [step * k for k in range(1, self.epoch_samples)]
        exchange_step = duration / self.exchange_epochs
        exchanges = [exchange_step * k for k in range(1, self.exchange_epochs)]

        self._faults_applied = 0
        self._recovery_time_s = 0.0
        self._queries_repaired = 0
        self._migrations_applied = 0
        self._query_migrations = {}
        #: Epochs (per cell) whose in-flight window peak exceeded the
        #: batch size — the SLO backpressure-exposure signal.
        self._cell_backpressure = [0] * self._ncells
        #: Cumulative operator totals already billed to ``op.*.items``.
        self._billed_totals: Optional[Dict[str, int]] = None
        self._flow_seq = 0
        self._trace_store = (
            SegmentStore(self._ncells) if recorder.enabled else None
        )
        #: Migration gates open at creation (the barrier is quiescent,
        #: make-before-break), so no observed epoch ever counts one
        #: closed — the counter mirrors the sequential executor's.
        self._migration_downtime_epochs = 0
        self._next_gate_id = 0
        #: Global traced-epoch trackers feeding the rebalancer the same
        #: snapshot sequence the sequential executor emits.
        self._epoch_index = 0
        self._epoch_start = 0.0
        self._last_metrics: Optional[RunMetrics] = None
        self._last_totals: Optional[Dict[str, int]] = None
        #: Per-cell traced-epoch trackers.
        self._cell_epoch_index = [0] * self._ncells
        self._cell_epoch_start = [0.0] * self._ncells
        self._cell_last_metrics: List[Optional[RunMetrics]] = [
            None
        ] * self._ncells
        self._cell_last_totals: List[Optional[Dict[str, int]]] = [
            None
        ] * self._ncells

        pending: Dict[int, List[Batch]] = {}
        opens: List[Tuple[float, int, int]] = []  # (open_at, seq, gate_id)
        sequence = 0
        event_index = 0
        sample_index = 0
        exchange_index = 0
        while True:
            next_fault = (
                events[event_index].time if event_index < len(events) else math.inf
            )
            next_open = opens[0][0] if opens else math.inf
            next_sample = (
                samples[sample_index] if sample_index < len(samples) else math.inf
            )
            next_exchange = (
                exchanges[exchange_index]
                if exchange_index < len(exchanges)
                else math.inf
            )
            boundary = min(
                next_fault, next_open, next_sample, next_exchange, duration
            )
            sampled = boundary == next_sample
            drain = (
                boundary >= duration
                or boundary == next_fault
                or boundary == next_open
                # The rebalancer needs quiescence at every observed
                # boundary: drained counters replay to the sequential
                # executor's exact metrics, so the drift detector sees
                # byte-identical snapshots on either data plane.
                or (sampled and rebalancer is not None)
            )
            pending = self._step_all(boundary, pending)
            if drain:
                while pending:
                    pending = self._step_all(boundary, pending)
            if boundary >= duration:
                break
            observed = (
                sampled or boundary == next_fault or boundary == next_open
            )
            while sample_index < len(samples) and samples[sample_index] <= boundary:
                sample_index += 1
            while (
                exchange_index < len(exchanges)
                and exchanges[exchange_index] <= boundary
            ):
                exchange_index += 1
            snapshot = None
            if observing and (drain or sampled):
                states = self._gather(("state",))
                if recorder.enabled:
                    self._absorb_traces(states)
                    self._bill_operator_items(states)
                    self._emit_cell_epochs(boundary, states)
                self.last_query_slos = self._build_slos(states)
                # Pure exchange boundaries have no sequential analogue,
                # so the global epoch series skips them — the detector
                # must see the exact sequence the sequential run emits.
                if rebalancer is not None and observed:
                    snapshot = self._emit_global_epoch(boundary, states)
            # Recovery completions first, then faults — mirroring the
            # sequential boundary order exactly.
            while opens and opens[0][0] <= boundary:
                gate_id = heapq.heappop(opens)[2]
                self._broadcast(("open_gate", gate_id))
            while event_index < len(events) and events[event_index].time <= boundary:
                event = events[event_index]
                event_index += 1
                gate = self._apply_fault(event)
                if gate is not None and gate[1] < duration:
                    heapq.heappush(opens, (gate[1], sequence, gate[0]))
                    sequence += 1
            # The rebalancer observes after the boundary's faults, as in
            # the sequential executor: a migration adapts the
            # post-repair plan instead of one a fault just tore up.
            if rebalancer is not None and snapshot is not None:
                self._apply_migration(snapshot)

        states = self._gather(("finish",))
        metrics = self._merge(states)
        self._replay_capture(states)
        self.peak_live_items_per_shard = {
            cell: state["peak"] for cell, state in enumerate(states)
        }
        self.peak_live_items = max(
            self.peak_live_items_per_shard.values(), default=0
        )
        self.last_query_slos = self._build_slos(states)
        if recorder.enabled:
            self._absorb_traces(states)
            self._bill_operator_items(states)
            self._emit_final_epochs(states)
            # One deterministic fold of every cell's shipped trace —
            # after this, the parent RunLog carries the whole plane.
            self._trace_store.merge_into(recorder)
            for slo in self.last_query_slos:
                recorder.event("query.slo", **slo.to_dict())
            for peer, work in sorted(metrics.peer_work.items()):
                recorder.set_gauge(f"peer.work.{peer}", work)
            for (a, b), bits in sorted(metrics.link_bits.items()):
                recorder.set_gauge(f"link.bits.{a}-{b}", bits)
        return metrics

    def _broadcast(self, msg: Tuple[Any, ...]) -> None:
        for cell in self._cells:
            cell.submit(msg)
        for cell in self._cells:
            cell.result()

    def _gather(self, msg: Tuple[Any, ...]) -> List[Any]:
        for cell in self._cells:
            cell.submit(msg)
        return [cell.result() for cell in self._cells]

    def _step_all(
        self, until: float, pending: Dict[int, List[Batch]]
    ) -> Dict[int, List[Batch]]:
        """One synchronized round: every cell pumps to ``until`` with
        its pending inbound, and the outboxes are redistributed in
        canonical order (ascending producer cell, emission order) —
        becoming the next round's inbound."""
        for index, cell in enumerate(self._cells):
            cell.submit(("step", until, pending.get(index, []), False))
        outboxes = [cell.result()[0] for cell in self._cells]
        recorder = self.recorder
        merged: Dict[int, List[Batch]] = {}
        for src, outbox in enumerate(outboxes):
            for dst in sorted(outbox):
                batches = outbox[dst]
                merged.setdefault(dst, []).extend(batches)
                self.exchange_batches += len(batches)
                pair = (src, dst)
                moved = 0
                for _, batch in batches:
                    moved += len(batch)
                    self.exchange_bytes += batch_bytes(batch)
                self.exchange_items += moved
                self.exchange_pairs[pair] = (
                    self.exchange_pairs.get(pair, 0) + moved
                )
                if recorder.enabled:
                    # One flow per (src, dst) redistribution: the
                    # Chrome-trace exporter renders it as an s/f arrow
                    # between the two cells' lanes, visualizing the
                    # cut-edge hand-off (delivery next round — the
                    # certified epoch_lag in action).
                    self._flow_seq += 1
                    recorder.event(
                        "exchange.flow",
                        flow=self._flow_seq,
                        src=src,
                        dst=dst,
                        until=until,
                        batches=len(batches),
                        items=moved,
                    )
        return merged

    # ------------------------------------------------------------------
    # Faults: parent-side apply + cell reconcile
    # ------------------------------------------------------------------
    def _apply_fault(self, event: Any) -> Optional[Tuple[int, float]]:
        event.apply(self.net)
        self._faults_applied += 1
        recorder = self.recorder
        if recorder.enabled:
            recorder.event(
                "fault.applied", stream_time=event.time, fault=event.describe()
            )
            recorder.inc("exec.faults_applied")
        report = (
            self.repair(context=event.describe()) if self.repair is not None else None
        )
        recovery_s = 0.0
        if report is not None:
            recovery_s = report.recovery_time_ms() / 1000.0  # type: ignore[attr-defined]
            self._queries_repaired += len(report.repaired_queries)  # type: ignore[attr-defined]
        self._recovery_time_s += min(recovery_s, self.duration - event.time)
        gate_id = self._next_gate_id
        self._next_gate_id += 1
        gate_open = recovery_s <= 0.0
        self._reconcile_cells(gate_id, gate_open)
        return None if gate_open else (gate_id, event.time + recovery_s)

    def _apply_migration(self, snapshot: Any) -> None:
        """Offer one global epoch snapshot to the rebalancer and apply
        its moves across all cells.

        The control plane rewrites the deployment (tear down +
        re-register, verified pre-flight); every cell then reconciles
        against the rewritten plan through the same diff churn repair
        ships, and :meth:`_assign_cells` re-certifies the shard plan
        for the migrated topology.  The delivery gate is *open*: the
        barrier is drained, so the rewrite is make-before-break and
        nothing is lost or duplicated.
        """
        report = self.rebalancer.observe_epoch(snapshot)  # type: ignore[attr-defined]
        if report is None:
            return
        self._migrations_applied += 1
        for name in getattr(report, "moved_queries", None) or ():
            self._query_migrations[name] = (
                self._query_migrations.get(name, 0) + 1
            )
        if self.recorder.enabled:
            self.recorder.inc("exec.migrations_applied")
        gate_id = self._next_gate_id
        self._next_gate_id += 1
        self._reconcile_cells(gate_id, gate_open=True)

    def _fresh_plan(self) -> Optional["ShardPlan"]:
        if self.replan is not None:
            return self.replan()
        from ..analysis.shards import certify_shards

        plan, _ = certify_shards(self.deployment)
        return plan

    def _assign_cells(self) -> None:
        """Re-validate the shard plan against the mutated topology and
        map any newly appearing super-peers to cells.

        Sticky first (a rejoined node returns to its old cell), then
        deterministic least-loaded.  If the fresh certificate would
        *split* nodes currently co-resident in one cell that is only a
        coarsening — always safe; the conflict case (a certified shard
        spanning two cells, i.e. the new plan demands a *merge* across
        our cell boundary) is counted and, because every engine
        operator is per-item deterministic over per-stream FIFOs, safe
        to continue inline — process mode refuses instead.
        """
        plan = self._fresh_plan()
        loads = [0] * self._ncells
        for cell in self._owner.values():
            loads[cell] += 1
        known_nodes = set(self._node_cell)
        shards = plan.shards if plan is not None else ()
        for shard in sorted(shards, key=lambda s: s.shard_id):
            for node in shard.nodes:
                if node in known_nodes:
                    continue
                sticky = self._cell_history.get(node)
                if sticky is None:
                    sticky = min(
                        range(self._ncells), key=lambda index: (loads[index], index)
                    )
                self._node_cell[node] = sticky
                self._cell_history[node] = sticky
                known_nodes.add(node)
                loads[sticky] += 1
        conflict = False
        if plan is None or not plan.certified:
            conflict = True
        else:
            for shard in shards:
                spanned = {
                    self._node_cell[node]
                    for node in shard.nodes
                    if node in self._node_cell
                }
                if len(spanned) > 1:
                    conflict = True
                    break
        if conflict:
            self.partition_conflicts += 1
            if self.recorder.enabled:
                self.recorder.inc("exec.partition_conflicts")
            if self.mode_used == "process":
                raise ExecutionError(
                    "repartition conflict: the re-certified shard plan "
                    "merges shards across worker processes; re-run with "
                    "mode='inline' or workers=1"
                )

    def _reconcile_cells(self, gate_id: int, gate_open: bool) -> None:
        """Diff the repaired deployment against the mirror and ship the
        per-cell reconcile messages (all cells are drained)."""
        counters: Dict[str, int] = {}
        for counts in self._gather(("counters",)):
            counters.update(counts)
        self._assign_cells()
        deployment = self.deployment
        mirror = self._mirror

        stale = [
            stream_id
            for stream_id, stream in mirror.items()
            if deployment.streams.get(stream_id) is not stream
        ]
        for stream_id in stale:
            self._retired_order.append((stream_id, self._owner.pop(stream_id)))
            del mirror[stream_id]
            self._consumers.pop(stream_id, None)
            for has in self._cell_has:
                has.discard(stream_id)

        adds: List[List[Tuple["InstalledStream", bool, int]]] = [
            [] for _ in range(self._ncells)
        ]
        export_changed: Set[str] = set()
        #: Streams (re)installed this round: their owner nodes restart
        #: at produced_count 0, so proxies must NOT inherit the retired
        #: predecessor's count from the pre-reconcile gather.
        fresh: Set[str] = set()

        def ensure_proxy(cell: int, stream_id: str) -> None:
            if stream_id in self._cell_has[cell]:
                return
            stream = mirror[stream_id]
            base = 0 if stream_id in fresh else counters.get(stream_id, 0)
            adds[cell].append((_strip_parent(stream), True, base))
            self._cell_has[cell].add(stream_id)
            self._consumers.setdefault(stream_id, set()).add(cell)
            export_changed.add(stream_id)

        for stream in topological_streams(deployment):
            stream_id = stream.stream_id
            if stream_id in mirror:
                continue
            owner = self._node_cell.get(stream.origin_node)
            if owner is None:
                owner = self._cell_history.get(stream.origin_node, 0)
                self._node_cell[stream.origin_node] = owner
                self._cell_history[stream.origin_node] = owner
            mirror[stream_id] = stream
            self._owner[stream_id] = owner
            if stream.parent_id is not None and (
                self._owner[stream.parent_id] != owner
            ):
                ensure_proxy(owner, stream.parent_id)
            adds[owner].append((stream, False, 0))
            self._cell_has[owner].add(stream_id)
            fresh.add(stream_id)

        park: List[str] = []
        rewires: List[List[Tuple[str, "RegisteredQuery", int]]] = [
            [] for _ in range(self._ncells)
        ]
        for name, record in self._records.items():
            current = deployment.queries.get(name)
            if current is None:
                park.append(name)
                continue
            if current is record:
                continue
            self._records[name] = current
            host = self._query_cell[name]
            for _, delivered_id in current.delivered:
                if delivered_id in mirror and (
                    delivered_id not in self._cell_has[host]
                ):
                    ensure_proxy(host, delivered_id)
            rewires[host].append((name, current, gate_id))

        for index, cell in enumerate(self._cells):
            exports = {
                stream_id: tuple(sorted(self._consumers[stream_id]))
                for stream_id in export_changed
                if self._owner.get(stream_id) == index
            }
            cell.submit(
                (
                    "reconcile",
                    {
                        "stale": stale,
                        "add": adds[index],
                        "exports": exports,
                        "gates": [(gate_id, gate_open)],
                        "park": park,
                        "rewire": rewires[index],
                    },
                )
            )
        for cell in self._cells:
            cell.result()

    # ------------------------------------------------------------------
    # Merge: replay per-cell counters in the sequential order
    # ------------------------------------------------------------------
    def _merged_counters(
        self, states: Sequence[Dict[str, Any]]
    ) -> Dict[str, StreamCounters]:
        merged: Dict[str, StreamCounters] = {}
        for state in states:
            for stream_id, packed in state["counters"].items():
                produced_count, produced_bytes, duplicate_base, stages, added = packed
                merged[stream_id] = StreamCounters(
                    produced_count=produced_count,
                    produced_bytes=produced_bytes,
                    duplicate_base=duplicate_base,
                    stage_counts=stages,
                    repair_added=added,
                )
        return merged

    def _ordered_retired(
        self, states: Sequence[Dict[str, Any]]
    ) -> List[RetiredSnapshot]:
        pools: Dict[Tuple[int, str], List[RetiredSnapshot]] = {}
        for cell, state in enumerate(states):
            for snapshot in state["retired"]:
                pools.setdefault((cell, snapshot.stream.stream_id), []).append(
                    snapshot
                )
        ordered: List[RetiredSnapshot] = []
        for stream_id, cell in self._retired_order:
            pool = pools.get((cell, stream_id))
            if not pool:
                raise ExecutionError(
                    f"merge mismatch: no retired snapshot for {stream_id!r} "
                    f"from cell {cell}"
                )
            ordered.append(pool.pop(0))
        if any(pool for pool in pools.values()):
            raise ExecutionError("merge mismatch: unconsumed retired snapshots")
        return ordered

    def _merged_deliveries(
        self, states: Sequence[Dict[str, Any]]
    ) -> List[DeliveryCounters]:
        out: List[DeliveryCounters] = []
        for name, record in self._records.items():
            host = self._query_cell[name]
            multi, inputs, results = states[host]["deliveries"][name]
            out.append(DeliveryCounters(record, multi, inputs, results))
        return out

    def _items_lost(self, states: Sequence[Dict[str, Any]]) -> int:
        return sum(state["source_lost"] for state in states) + sum(
            lost
            for state in states
            for lost in state["gate_lost"].values()
        )

    def _query_lost_merged(self, states: Sequence[Dict[str, Any]]) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for state in states:
            for name, lost in state.get("query_lost", {}).items():
                merged[name] = merged.get(name, 0) + lost
        return merged

    def _merge(self, states: Sequence[Dict[str, Any]]) -> RunMetrics:
        return replay_metrics(
            self.net,
            self.duration,
            topological_streams(self.deployment),
            self._merged_counters(states),
            self._ordered_retired(states),
            self._merged_deliveries(states),
            faults_applied=self._faults_applied,
            items_lost=self._items_lost(states),
            items_lost_by_query=self._query_lost_merged(states),
            recovery_time_s=self._recovery_time_s,
            queries_repaired=self._queries_repaired,
            queries_lost=sum(
                1 for name in self._records if name not in self.deployment.queries
            ),
            migrations_applied=self._migrations_applied,
            migration_downtime_epochs=self._migration_downtime_epochs,
        )

    def _replay_capture(self, states: Sequence[Dict[str, Any]]) -> None:
        """Replay captured results per query in registration order.

        Per-query sequences are identical to the sequential run;
        cross-query interleaving follows registration order instead of
        pump order (DESIGN.md §12)."""
        if self.capture is None:
            return
        for name in self._records:
            captured = states[self._query_cell[name]].get("captured", {})
            for item in captured.get(name, ()):
                self.capture(name, item)

    # ------------------------------------------------------------------
    # Tracing: segment absorption and partition-invariant op billing
    # ------------------------------------------------------------------
    def _absorb_traces(self, states: Sequence[Dict[str, Any]]) -> None:
        for state in states:
            self._trace_store.absorb(state.get("trace"))

    def _bill_operator_items(self, states: Sequence[Dict[str, Any]]) -> None:
        """Bill ``op.<name>.items`` from the summed per-cell operator
        totals, as deltas since the last billing.

        The totals are partition-invariant (each stream's billed stage
        inputs, independent of how sibling pipelines share tries within
        a cell), so the final counters equal a sequential traced run's
        by construction — the trace-merge identity test pins it.
        """
        totals: Dict[str, int] = {}
        for state in states:
            for name, inputs in state["operator_totals"].items():
                totals[name] = totals.get(name, 0) + inputs
        previous = self._billed_totals or {}
        recorder = self.recorder
        for name, count in totals.items():
            delta = count - previous.get(name, 0)
            if delta:
                recorder.inc(f"op.{name}.items", delta)
        self._billed_totals = totals

    # ------------------------------------------------------------------
    # Per-query SLOs
    # ------------------------------------------------------------------
    def _build_slos(self, states: Sequence[Dict[str, Any]]) -> List["QuerySLO"]:
        """Per-query SLO records from the latest gathered cell states.

        ``delivery_latency_s`` converts the certified epoch lag into
        worst-case stream time: a cut-crossing item produced right
        after an exchange barrier waits ``epoch_lag`` full exchange
        epochs before its delivery step sees it.
        """
        from ..obs.slo import QuerySLO

        epoch_width = self.duration / self.exchange_epochs
        slos: List["QuerySLO"] = []
        for name in self._records:
            host = self._query_cell[name]
            state = states[host]
            entry = state["deliveries"].get(name)
            _, inputs, results = entry if entry else (False, 0, 0)
            lag = self.query_lags.get(name, 0)
            slos.append(
                QuerySLO(
                    query=name,
                    shard=host,
                    epoch_lag=lag,
                    delivery_latency_s=lag * epoch_width,
                    delivered_inputs=inputs,
                    delivered_results=results,
                    items_lost=state.get("query_lost", {}).get(name, 0),
                    migrations=self._query_migrations.get(name, 0),
                    backpressure_epochs=self._cell_backpressure[host],
                    queue_peak=state["peak"],
                    parked=name not in self.deployment.queries,
                )
            )
        return slos

    def query_slos(self) -> List["QuerySLO"]:
        """The latest computed SLO records (end-of-run after
        :meth:`run`; mid-run they reflect the last observed barrier)."""
        return list(self.last_query_slos)

    # ------------------------------------------------------------------
    # Per-shard traced epochs
    # ------------------------------------------------------------------
    def _cell_metrics(
        self,
        cell: int,
        state: Dict[str, Any],
        merged: Dict[str, StreamCounters],
    ) -> RunMetrics:
        """One cell's slice of the accounting: its owned streams and
        hosted queries, replayed against the *global* merged counters
        (children need foreign parents' counts).  Global fault
        transients are attributed to cell 0."""
        order = [
            stream
            for stream in topological_streams(self.deployment)
            if self._owner.get(stream.stream_id) == cell
        ]
        deliveries: List[DeliveryCounters] = []
        for name in self._records:
            if self._query_cell[name] != cell:
                continue
            entry = state["deliveries"].get(name)
            if entry is None:
                continue
            multi, inputs, results = entry
            deliveries.append(
                DeliveryCounters(self._records[name], multi, inputs, results)
            )
        items_lost = state["source_lost"] + sum(state["gate_lost"].values())
        return replay_metrics(
            self.net,
            self.duration,
            order,
            merged,
            state["retired"],
            deliveries,
            faults_applied=self._faults_applied if cell == 0 else 0,
            items_lost=items_lost,
            items_lost_by_query=state.get("query_lost"),
            recovery_time_s=self._recovery_time_s if cell == 0 else 0.0,
            queries_repaired=self._queries_repaired if cell == 0 else 0,
            queries_lost=sum(
                1
                for name in self._records
                if self._query_cell[name] == cell
                and name not in self.deployment.queries
            ),
            migrations_applied=self._migrations_applied if cell == 0 else 0,
            migration_downtime_epochs=(
                self._migration_downtime_epochs if cell == 0 else 0
            ),
        )

    def _emit_cell_epoch(
        self, cell: int, t_end: float, state: Dict[str, Any], merged: Dict[str, StreamCounters]
    ) -> None:
        if t_end <= self._cell_epoch_start[cell] and self._cell_epoch_index[cell] > 0:
            return
        metrics = self._cell_metrics(cell, state, merged)
        totals = state["operator_totals"]
        snapshot = snapshot_delta(
            self._cell_epoch_index[cell],
            self._cell_epoch_start[cell],
            t_end,
            metrics,
            self._cell_last_metrics[cell],
            self.net,
            totals,
            self._cell_last_totals[cell],
            inflight_items=state["inflight"],
            inflight_peak=state["window_peak"],
        )
        snapshot.shard = cell
        self.recorder.add_epoch(snapshot)
        if snapshot.inflight_peak > self.batch_size:
            self._cell_backpressure[cell] += 1
        self._cell_epoch_index[cell] += 1
        self._cell_epoch_start[cell] = t_end
        self._cell_last_metrics[cell] = metrics
        self._cell_last_totals[cell] = totals

    def _emit_cell_epochs(
        self, t_end: float, states: Sequence[Dict[str, Any]]
    ) -> None:
        merged = self._merged_counters(states)
        for cell, state in enumerate(states):
            self._emit_cell_epoch(cell, t_end, state, merged)

    def _emit_global_epoch(
        self, t_end: float, states: Sequence[Dict[str, Any]]
    ) -> Any:
        """The whole-deployment epoch snapshot the rebalancer consumes.

        Built by merging the drained per-cell counters through the
        sequential replay, so every field derived from counters (peer
        CPU%, link kbps, item counts — all the drift detector reads)
        equals the sequential executor's
        :meth:`StreamSimulator._emit_epoch` snapshot bit for bit;
        only ``inflight_peak`` is approximated as the max over cell
        window peaks (cells peak at different instants).
        Not handed to the recorder: traced sharded runs record
        per-cell epochs, and a duplicate global series would change
        their export.  Returns ``None`` at a coincident boundary,
        exactly like the sequential emitter.
        """
        if t_end <= self._epoch_start and self._epoch_index > 0:
            return None  # coincident boundaries: nothing elapsed
        metrics = self._merge(states)
        totals: Dict[str, int] = {}
        for state in states:
            for name, inputs in state["operator_totals"].items():
                totals[name] = totals.get(name, 0) + inputs
        snapshot = snapshot_delta(
            self._epoch_index,
            self._epoch_start,
            t_end,
            metrics,
            self._last_metrics,
            self.net,
            totals,
            self._last_totals,
            inflight_items=sum(state["inflight"] for state in states),
            inflight_peak=max(
                (state["window_peak"] for state in states), default=0
            ),
        )
        self._epoch_index += 1
        self._epoch_start = t_end
        self._last_metrics = metrics
        self._last_totals = totals
        return snapshot

    def _emit_final_epochs(self, states: Sequence[Dict[str, Any]]) -> None:
        merged = self._merged_counters(states)
        for cell, state in enumerate(states):
            self._emit_cell_epoch(cell, self.duration, state, merged)
        recorder = self.recorder
        recorder.set_gauge("exec.peak_live_items", self.peak_live_items)
        for cell, peak in self.peak_live_items_per_shard.items():
            recorder.set_gauge(f"exec.peak_live_items.shard{cell}", peak)
        recorder.inc("exec.runs")
        recorder.inc("exchange.batches", self.exchange_batches)
        recorder.inc("exchange.items", self.exchange_items)
        recorder.inc("exchange.bytes", self.exchange_bytes)
        for (src, dst), items in sorted(self.exchange_pairs.items()):
            recorder.inc(f"exchange.cell{src}->cell{dst}.items", items)
        recorder.set_gauge("exec.workers", self.workers_used)
