"""Measurement collectors for executed deployments.

Everything the paper's figures plot comes out of these counters:

* per-link transmitted bits → "Avg. Network Traffic (kbps)" (Fig. 6)
  and per-peer accumulated MBit (Fig. 7);
* per-peer work units → "Avg. CPU Load (%)" (Figs. 6/7), as work rate
  over peer capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..network.topology import Link, Network


@dataclass
class RunMetrics:
    """Raw counters of one executed simulation run."""

    duration: float
    link_bits: Dict[Tuple[str, str], float] = field(default_factory=dict)
    peer_work: Dict[str, float] = field(default_factory=dict)
    items_delivered: Dict[str, int] = field(default_factory=dict)
    items_generated: Dict[str, int] = field(default_factory=dict)

    # -- degradation under churn (all zero for fault-free runs) --------
    #: Fault events applied during the run.
    faults_applied: int = 0
    #: Items dropped because of faults: source items generated while the
    #: source's home super-peer was down, plus delivered items dropped
    #: while their subscription's recovery was still in progress.
    items_lost: int = 0
    #: Recovery-gate drops broken down by subscription (queries with no
    #: drops are omitted, so fault-free runs keep an empty dict).  Sums
    #: to the gate component of :attr:`items_lost`; feeds the per-query
    #: SLO records (DESIGN.md §15).
    items_lost_by_query: Dict[str, int] = field(default_factory=dict)
    #: Total stream time spent recovering (per fault: the slowest
    #: re-registration, capped at the remaining run horizon).
    recovery_time_s: float = 0.0
    #: Traffic carried by repair-created streams — the extra re-routing
    #: cost of recovering from the faults.
    rerouted_traffic_bits: float = 0.0
    #: Subscriptions successfully re-registered after faults.
    queries_repaired: int = 0
    #: Subscriptions still torn down (pending repair) at the end.
    queries_lost: int = 0

    # -- adaptive rebalancing (zero for static runs) -------------------
    #: Live plan migrations applied by a :class:`~repro.sharing
    #: .rebalance.Rebalancer` during the run.
    migrations_applied: int = 0
    #: Epochs during which any migration's delivery gate stayed closed.
    #: Migrations are make-before-break at quiescent epoch barriers, so
    #: this stays 0 — the conservation tests pin it.
    migration_downtime_epochs: int = 0

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add_link_bits(self, link: Link, bits: float) -> None:
        self.link_bits[link.ends] = self.link_bits.get(link.ends, 0.0) + bits

    def add_peer_work(self, peer: str, work: float) -> None:
        self.peer_work[peer] = self.peer_work.get(peer, 0.0) + work

    def count_delivery(self, query: str, items: int) -> None:
        self.items_delivered[query] = self.items_delivered.get(query, 0) + items

    def count_generated(self, stream: str, items: int) -> None:
        self.items_generated[stream] = self.items_generated.get(stream, 0) + items

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    def link_kbps(self, link: Link) -> float:
        """Average traffic on a connection in kbit/s (Fig. 6 right)."""
        return self.link_bits.get(link.ends, 0.0) / self.duration / 1000.0

    def peer_cpu_percent(self, net: Network, peer: str) -> float:
        """Average CPU load in percent of capacity (Figs. 6/7 left)."""
        capacity = net.super_peer(peer).capacity
        return self.peer_work.get(peer, 0.0) / self.duration / capacity * 100.0

    def peer_accumulated_mbit(self, net: Network, peer: str) -> float:
        """Accumulated in+out traffic of a peer in MBit (Fig. 7 right).

        **In+out convention:** every link's bits count toward *both*
        endpoints — a peer's figure is the sum over all links it
        terminates, regardless of transfer direction.  Consequently one
        transferred bit appears in two peers' totals, and summing this
        method over all peers yields **twice** :meth:`total_mbit`.
        This matches the paper's Fig. 7 ("accumulated network traffic
        at the super-peers"), which charges a transfer to sender and
        receiver alike; pinned by ``test_peer_accumulated_mbit_in_out``
        so the figure stays comparable across refactors.
        """
        total = 0.0
        for (a, b), bits in self.link_bits.items():
            if peer in (a, b):
                total += bits
        return total / 1_000_000.0

    def total_mbit(self) -> float:
        return sum(self.link_bits.values()) / 1_000_000.0

    def rerouted_mbit(self) -> float:
        """Traffic carried by repair-created streams, in MBit."""
        return self.rerouted_traffic_bits / 1_000_000.0

    def recovery_overhead(self) -> float:
        """Re-routing traffic as a fraction of all transmitted traffic.

        The churn benchmark's regression gate watches this: it grows
        when plan repair starts choosing needlessly long detours.
        """
        total = sum(self.link_bits.values())
        return self.rerouted_traffic_bits / total if total else 0.0

    def cpu_series(self, net: Network) -> List[Tuple[str, float]]:
        return [
            (name, self.peer_cpu_percent(net, name))
            for name in net.super_peer_names()
        ]

    def traffic_series(self, net: Network) -> List[Tuple[str, float]]:
        return [(str(link), self.link_kbps(link)) for link in net.links()]
