"""Columnar batch evaluation for the hot operator path.

A :class:`ColumnBatch` is a struct-of-arrays view over a batch of
*regular* stream items: every item shares the exact same nested element
structure (the photon workload, partial-aggregate wire items, ...), so
the batch is represented as the tuple of source elements plus lazily
materialized flat columns — one text/number column per leaf element —
and a *selection vector* of surviving row indices.  Operators that know
how to work on columns (:meth:`Operator.process_columns`) then run as
array passes:

* selection refines the row vector with fused predicate comparisons
  (:func:`repro.predicates.vectorized.filter_rows`);
* projection swaps the batch's *virtual shape* for a pruned one — a
  pure metadata change, no trees are built or copied;
* window/aggregate operators gather the position/value columns and run
  the exact same sequential window folds as the tree path;
* delivery counting (:class:`DeliveryKernel`) exploits that a
  restructured result count is structurally invariant across rows of
  one shape, replacing per-item restructuring with one calibration
  build per shape.

Trees are rebuilt (:meth:`ColumnBatch.decode`) only at boundaries that
genuinely need them: operators without kernels, result capture,
multi-input combination, and irregular batches never leave the tree
path at all (the schema-sniffing encoder falls back per batch).

**Byte identity.** Every number the executor accounts — produced
counts, produced bytes, per-stage input counts, delivery inputs and
results, exchange items/bytes — is computed from the columns to be
integer-identical to the tree path (``serialized_bytes`` reproduces the
frozen-size formula; the count kernel reproduces per-item
``len(build(item))``), so ``RunMetrics`` and the obs epoch series are
byte-identical under ``REPRO_COLUMNAR=on|off`` (DESIGN.md §14).

The switch: ``REPRO_COLUMNAR=auto|on|off`` — ``auto`` (default)
encodes source batches of at least :data:`AUTO_MIN_ROWS` items;
``on`` always attempts encoding (identity tests); ``off`` never does.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..wxquery import DirectElement, EnclosedExpr, Expr, IfExpr, SequenceExpr
from ..xmlkit import Element
from ..xmlkit.columns import Shape, ShapeNode, leaf_size, shape_of
from .restructure import Restructurer

ENV_VAR = "REPRO_COLUMNAR"

#: ``auto`` mode only encodes batches at least this large: tiny batches
#: (the materializing oracle pushes single items) don't amortize the
#: validation/extraction overhead.
AUTO_MIN_ROWS = 8

#: A stream batch anywhere in the engine: plain trees or a column view.
Batch = Union[Sequence[Element], "ColumnBatch"]

#: Always-on plain-int counters (same idiom as the PR 4/5 cache
#: counters): bumped on the encode/decode/bypass paths, surfaced as
#: ``columnar.*`` recorder counters on traced runs and via
#: :func:`columnar_stats`.
STATS: Dict[str, int] = {
    "batches_encoded": 0,
    "rows_encoded": 0,
    "batches_bypassed_shape": 0,
    "batches_bypassed_irregular": 0,
    "batches_decoded": 0,
    "rows_decoded": 0,
    "delivery_kernel_batches": 0,
    "delivery_kernel_fallbacks": 0,
}


def columnar_stats() -> Dict[str, int]:
    """Copy of the process-wide columnar counters."""
    return dict(STATS)


def reset_columnar_stats() -> None:
    """Zero the counters (test isolation)."""
    for key in STATS:
        STATS[key] = 0


def columnar_mode() -> str:
    """Resolve the ``REPRO_COLUMNAR`` switch to ``auto``/``on``/``off``."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in ("", "auto"):
        return "auto"
    if value in ("on", "1", "true", "always"):
        return "on"
    if value in ("off", "0", "false", "never"):
        return "off"
    raise ValueError(
        f"{ENV_VAR} must be auto, on or off (got {value!r})"
    )


# ----------------------------------------------------------------------
# The batch store and the column view
# ----------------------------------------------------------------------
def _parse_number(text: Optional[str]) -> Optional[float]:
    """Mirror :meth:`Element.number`: missing text or a non-float parse
    both yield ``None``."""
    if text is None:
        return None
    try:
        return float(text)
    except ValueError:
        return None


class _BatchStore:
    """Shared column storage for every view derived from one batch.

    Columns are materialized lazily (a select kernel touching two
    leaves never extracts the other seven) and indexed by *base* row
    position, so derived views with filtered row vectors share them.
    """

    __slots__ = ("shape", "elements", "_texts", "_numbers", "_sizes")

    def __init__(self, shape: Shape, elements: Tuple[Element, ...]) -> None:
        self.shape = shape
        self.elements = elements
        self._texts: Dict[int, List[Optional[str]]] = {}
        self._numbers: Dict[int, List[Optional[float]]] = {}
        self._sizes: Dict[int, List[int]] = {}

    def text_col(self, column: int) -> List[Optional[str]]:
        col = self._texts.get(column)
        if col is None:
            col = self.shape.extractor(column)(self.elements)
            self._texts[column] = col
        return col

    def number_col(self, column: int) -> List[Optional[float]]:
        col = self._numbers.get(column)
        if col is None:
            col = [_parse_number(text) for text in self.text_col(column)]
            self._numbers[column] = col
        return col

    def size_col(self, leaf: ShapeNode) -> List[int]:
        column = leaf.column
        assert column is not None
        col = self._sizes.get(column)
        if col is None:
            tag_len = leaf.tag_len
            col = [leaf_size(text, tag_len) for text in self.text_col(column)]
            self._sizes[column] = col
        return col


def _rebuild_batch(elements: Tuple[Element, ...]) -> Batch:
    """Unpickle hook: re-encode the decoded rows on the receiving side.

    The wire payload is exactly the Element batch the tree path would
    have shipped; re-sniffing on arrival keeps the pickle format free
    of compiled artifacts.  A full registry on the receiver simply
    leaves the batch on the tree path.
    """
    return encode_batch(list(elements))


class ColumnBatch:
    """A column view: shared store + row selection + virtual shape.

    ``rows`` holds *base* indices into the store (a ``range`` for a
    fresh batch, a filtered list after selection); ``vshape`` is the
    (possibly pruned) shape describing what each surviving row looks
    like.  Decoding materializes exactly the Element trees the tree
    path would have produced at the same pipeline point.
    """

    __slots__ = ("store", "rows", "vshape", "_decoded", "_bytes")

    def __init__(
        self, store: _BatchStore, rows: Sequence[int], vshape: ShapeNode
    ) -> None:
        self.store = store
        self.rows = rows
        self.vshape = vshape
        self._decoded: Optional[Tuple[Element, ...]] = None
        self._bytes: Optional[int] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ColumnBatch rows={len(self.rows)} shape={self.vshape.tag!r} "
            f"columns={self.store.shape.column_count}>"
        )

    # ------------------------------------------------------------------
    # Derivation (kernel outputs)
    # ------------------------------------------------------------------
    def derive(self, rows: Sequence[int]) -> "ColumnBatch":
        """Same shape, refined row vector (selection output)."""
        return ColumnBatch(self.store, rows, self.vshape)

    def project(self, vshape: ShapeNode) -> "ColumnBatch":
        """Same rows, pruned virtual shape (projection output)."""
        if vshape is self.vshape:
            return self
        return ColumnBatch(self.store, self.rows, vshape)

    # ------------------------------------------------------------------
    # Column access (indexed by base row id)
    # ------------------------------------------------------------------
    def number_column(self, steps: Tuple[str, ...]) -> Optional[List[Optional[float]]]:
        """Numeric column for a child-axis path, or ``None`` when the
        path misses the shape or lands on an interior node — both mean
        every row evaluates to ``None``, exactly like
        ``Element.number`` on the tree path."""
        node = self.vshape.resolve(steps)
        if node is None or node.column is None:
            return None
        return self.store.number_col(node.column)

    def text_column(self, steps: Tuple[str, ...]) -> Optional[List[Optional[str]]]:
        """Text column for a child-axis path (``None`` = all rows None)."""
        node = self.vshape.resolve(steps)
        if node is None or node.column is None:
            return None
        return self.store.text_col(node.column)

    # ------------------------------------------------------------------
    # Tree boundaries
    # ------------------------------------------------------------------
    def decode(self) -> Tuple[Element, ...]:
        """Materialize the Element trees of the surviving rows.

        An unprojected view returns the original (frozen-at-ingest)
        elements; a projected view rebuilds exactly what
        ``prune_to_paths`` would have produced per item, frozen so
        downstream accounting sees pinned sizes.  Cached — repeated
        boundaries (several tree-only stages) decode once.
        """
        decoded = self._decoded
        if decoded is None:
            store = self.store
            if self.vshape is store.shape.root:
                elements = store.elements
                decoded = tuple(elements[i] for i in self.rows)
            else:
                build, columns = self.vshape.decoder()
                cols = [store.text_col(c) for c in columns]
                decoded = tuple(build(i, *cols) for i in self.rows)
                for element in decoded:
                    element.freeze()
            STATS["batches_decoded"] += 1
            STATS["rows_decoded"] += len(decoded)
            self._decoded = decoded
        return decoded

    def decode_row(self, base_index: int) -> Element:
        """Materialize a single row (kernel calibration)."""
        store = self.store
        if self.vshape is store.shape.root:
            return store.elements[base_index]
        build, columns = self.vshape.decoder()
        cols = [store.text_col(c) for c in columns]
        element: Element = build(base_index, *cols)
        return element.freeze()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def serialized_bytes(self) -> int:
        """Total serialized size of the surviving rows.

        Integer-identical to summing ``Element.serialized_size()`` over
        :meth:`decode`: unprojected rows answer from their frozen
        sizes; projected rows combine the shape's static interior bytes
        with the per-leaf size columns (same formula, never an
        estimate).
        """
        total = self._bytes
        if total is None:
            store = self.store
            rows = self.rows
            if self.vshape is store.shape.root:
                elements = store.elements
                total = sum(elements[i].serialized_size() for i in rows)
            else:
                static, leaves = self.vshape.size_info()
                total = static * len(rows)
                for leaf in leaves:
                    size_col = store.size_col(leaf)
                    total += sum(size_col[i] for i in rows)
            self._bytes = total
        return total

    # ------------------------------------------------------------------
    # Pickling (sharded cut-edge exchange)
    # ------------------------------------------------------------------
    def __reduce__(self) -> tuple:
        return (_rebuild_batch, (self.decode(),))


def apply_operator(operator, batch: Batch) -> Batch:
    """Evaluate one operator stage on a tree or column batch.

    Column batches go to the operator's kernel when it has one;
    operators without kernels see decoded trees (per item, in order),
    so every operator observes the exact input sequence the tree path
    would have fed it.  Shared by the prefix trie and ``Pipeline``.
    """
    if isinstance(batch, ColumnBatch):
        if operator.columnar:
            return operator.process_columns(batch)
        process = operator.process
        return [produced for item in batch.decode() for produced in process(item)]
    process = operator.process
    return [produced for item in batch for produced in process(item)]


def batch_bytes(batch: Batch) -> int:
    """Serialized bytes of a batch, column- or tree-represented."""
    if isinstance(batch, ColumnBatch):
        return batch.serialized_bytes()
    return sum(item.serialized_size() for item in batch)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_batch(items: Sequence[Element]) -> Batch:
    """Encode a batch, or return it unchanged when it cannot be.

    Fallback predicate (DESIGN.md §14): the first item's shape must be
    within the sniffing bounds and registry capacity, and *every* item
    must validate against it — one irregular document sends the whole
    batch down the tree path (never a partial split, so batch order and
    per-stage input counts are trivially preserved).
    """
    if not items:
        return items
    shape = shape_of(items[0])
    if shape is None:
        STATS["batches_bypassed_shape"] += 1
        return items
    validate = shape.validator
    for item in items:
        if not validate(item):
            STATS["batches_bypassed_irregular"] += 1
            return items
    STATS["batches_encoded"] += 1
    STATS["rows_encoded"] += len(items)
    store = _BatchStore(shape, tuple(items))
    return ColumnBatch(store, range(len(items)), shape.root)


def encode_ingest(batch: List[Element], mode: str) -> Batch:
    """Source-ingest encoding under the resolved mode."""
    if mode == "off" or not batch:
        return batch
    if mode != "on" and len(batch) < AUTO_MIN_ROWS:
        return batch
    return encode_batch(batch)


# ----------------------------------------------------------------------
# The delivery count kernel
# ----------------------------------------------------------------------
def _expr_has_if(expr: Expr) -> bool:
    if isinstance(expr, IfExpr):
        return True
    if isinstance(expr, DirectElement):
        return any(_expr_has_if(piece) for piece in expr.content)
    if isinstance(expr, EnclosedExpr):
        return _expr_has_if(expr.body)
    if isinstance(expr, SequenceExpr):
        return any(_expr_has_if(piece) for piece in expr.items)
    return False


class DeliveryKernel:
    """Count a subscription's restructured results without building them.

    The executor only needs delivery *result counts* when no capture
    hook is installed (``_SingleDelivery``), and for an if-free return
    clause the count per item is structurally invariant across items of
    one shape: path outputs count matched nodes (structure), variable
    outputs count bindings (structure), constructors emit exactly one
    element.  So the kernel builds the result for *one* calibration row
    per shape and multiplies.

    Aggregate wire batches add a per-row emptiness test: an ``<agg>``
    item whose finalized value is ``None`` (empty window under
    avg/min/max) binds nothing and yields zero results — reproduced
    here from the count/value columns with the exact
    ``wire_to_partial``/``final`` rules.

    :meth:`count` returns ``None`` whenever it will not vouch for
    exactness (conditional return clause, unparsable wire fields) — the
    caller then decodes and takes the per-item tree path.
    """

    __slots__ = ("restructurer", "countable", "_const")

    def __init__(self, restructurer: Restructurer) -> None:
        self.restructurer = restructurer
        self.countable = not _expr_has_if(restructurer.analyzed.flwr.return_expr)
        #: Calibrated results-per-emitting-row, keyed by virtual shape.
        self._const: Dict[ShapeNode, int] = {}

    def count(self, batch: ColumnBatch) -> Optional[int]:
        if not self.countable:
            STATS["delivery_kernel_fallbacks"] += 1
            return None
        if not len(batch):
            return 0
        restructurer = self.restructurer
        # Mirror Restructurer._bind's mode split exactly.
        if batch.vshape.tag == "agg" and restructurer._aggregations:
            result = self._count_aggregate(batch)
        else:
            result = self._calibrated(batch, batch.rows[0]) * len(batch)
        if result is None:
            STATS["delivery_kernel_fallbacks"] += 1
        else:
            STATS["delivery_kernel_batches"] += 1
        return result

    def _calibrated(self, batch: ColumnBatch, base_row: int) -> int:
        const = self._const.get(batch.vshape)
        if const is None:
            const = len(self.restructurer.build(batch.decode_row(base_row)))
            self._const[batch.vshape] = const
        return const

    def _count_aggregate(self, batch: ColumnBatch) -> Optional[int]:
        """Rows whose finalized aggregate is non-``None``, times the
        calibrated per-row result count."""
        aggregation = self.restructurer._aggregations[0]
        function = aggregation.aggregate or "avg"
        rows = batch.rows
        if function in ("count", "sum"):
            # count -> float(count), sum -> total: never None.
            return self._calibrated(batch, rows[0]) * len(rows)
        count_col = batch.text_column(("count",))
        if count_col is None:
            return 0  # no <count> child: every partial parses to count=0
        try:
            counts = [int(text) if text else 0 for text in count_col]
        except ValueError:
            return None  # malformed wire item: let the tree path raise
        if function == "avg":
            emitting = [i for i in rows if counts[i] > 0]
        else:  # min / max: also need the carried value element
            value_col = batch.text_column((function,))
            if value_col is None:
                return 0
            emitting = [
                i for i in rows if counts[i] > 0 and value_col[i] is not None
            ]
        if not emitting:
            return 0
        return self._calibrated(batch, emitting[0]) * len(emitting)
