"""Window machinery: the sliding windower, reorder buffering, and the
window-contents operator.

Window semantics (Section 2): a window specification ``|… ∆ step µ|``
denotes the window sequence ``W_k = [k·µ, k·µ + ∆)`` over *positions* —
item indices for ``count`` windows, reference-element values for
``diff`` windows.  ``W_k`` is emitted when the first position at or
beyond its upper boundary arrives; time-based windows with no matching
items are emitted empty so that downstream re-aggregation sees a
regular cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generic, List, Optional, Tuple, TypeVar

from ..properties import WindowContentsSpec
from ..xmlkit import Element, Path
from .eval import rebase
from .operators import EngineError, Operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columnar import ColumnBatch

T = TypeVar("T")


@dataclass(frozen=True)
class WindowBatch(Generic[T]):
    """One completed window: its index, bounds, and ordered contents."""

    index: int
    start: float
    end: float
    contents: Tuple[T, ...]

    def __len__(self) -> int:
        return len(self.contents)


class SlidingWindower(Generic[T]):
    """Assign position-stamped payloads to ``[k·µ, k·µ + ∆)`` windows.

    Positions must be non-decreasing (the paper requires streams sorted
    by the reference element; see :class:`ReorderBuffer` for the fuzzy
    relaxation).  ``add`` returns every window completed by the new
    arrival, in order.
    """

    def __init__(self, size: float, step: float, origin: float = 0.0) -> None:
        if size <= 0 or step <= 0:
            raise EngineError("window size and step must be positive")
        self.size = size
        self.step = step
        self.origin = origin
        self._next_index = 0
        self._buffer: List[Tuple[float, T]] = []
        self._last_position: Optional[float] = None

    def add(self, position: float, payload: T) -> List[WindowBatch[T]]:
        if self._last_position is not None and position < self._last_position:
            raise EngineError(
                f"out-of-order position {position} after {self._last_position}; "
                "time-based windows need a sorted reference element"
            )
        self._last_position = position
        completed = self._complete_up_to(position)
        self._buffer.append((position, payload))
        return completed

    def _complete_up_to(self, position: float) -> List[WindowBatch[T]]:
        out: List[WindowBatch[T]] = []
        while True:
            start = self.origin + self._next_index * self.step
            end = start + self.size
            if position < end:
                return out
            contents = tuple(p for pos, p in self._buffer if start <= pos < end)
            out.append(WindowBatch(self._next_index, start, end, contents))
            self._next_index += 1
            keep_from = self.origin + self._next_index * self.step
            self._buffer = [(pos, p) for pos, p in self._buffer if pos >= keep_from]

    def flush(self) -> List[WindowBatch[T]]:
        """Emit the remaining partially filled windows (explicit drain)."""
        out: List[WindowBatch[T]] = []
        while self._buffer:
            start = self.origin + self._next_index * self.step
            end = start + self.size
            contents = tuple(p for pos, p in self._buffer if start <= pos < end)
            out.append(WindowBatch(self._next_index, start, end, contents))
            self._next_index += 1
            keep_from = self.origin + self._next_index * self.step
            self._buffer = [(pos, p) for pos, p in self._buffer if pos >= keep_from]
        return out


class ReorderBuffer(Generic[T]):
    """Fixed-size buffer deriving a total order from a fuzzy one.

    Section 2 allows relaxing the sortedness premise of time-based
    windows "by requiring that a fixed sized buffer is sufficient to
    derive the total order": hold up to ``capacity`` items and release
    the smallest-position item whenever the buffer overflows.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise EngineError("reorder buffer capacity must be at least 1")
        self.capacity = capacity
        self._items: List[Tuple[float, int, T]] = []
        self._sequence = 0

    def add(self, position: float, payload: T) -> List[Tuple[float, T]]:
        """Insert; return items forced out in sorted order."""
        self._items.append((position, self._sequence, payload))
        self._sequence += 1
        self._items.sort(key=lambda entry: (entry[0], entry[1]))
        released: List[Tuple[float, T]] = []
        while len(self._items) > self.capacity:
            position, _, payload = self._items.pop(0)
            released.append((position, payload))
        return released

    def flush(self) -> List[Tuple[float, T]]:
        """Release everything, sorted."""
        released = [(pos, payload) for pos, _, payload in self._items]
        self._items.clear()
        return released

    def __len__(self) -> int:
        return len(self._items)


class WindowContentsOperator(Operator):
    """Emit one ``<window>`` element per completed data window.

    Used by WXQueries that bind a window and return the items
    themselves (no aggregation).
    """

    kind = "window"
    columnar = True

    def __init__(self, spec: WindowContentsSpec, item_path: Path) -> None:
        self.spec = spec
        self.item_path = item_path
        self._windower: SlidingWindower[Element] = SlidingWindower(
            float(spec.window.size), float(spec.window.step)
        )
        self._count = 0
        # Rebase the reference path once; per-item positioning is then
        # pure navigation (same value as item_number on the spec path).
        self._reference_steps = (
            None
            if spec.window.reference is None
            else rebase(spec.window.reference, item_path).steps
        )

    def process(self, item: Element) -> List[Element]:
        position = self._position(item)
        if position is None:
            return []
        batches = self._windower.add(position, item)
        return [self._emit(batch) for batch in batches]

    def process_columns(self, batch: "ColumnBatch") -> List[Element]:
        """Columnar window filling: positions come from the reference
        column, payloads are the decoded items (the emitted ``<window>``
        elements copy the items themselves, so trees are needed here
        anyway).  Same sequential windower calls as :meth:`process`;
        state is shared across tree/columnar batches."""
        count_kind = self.spec.window.kind == "count"
        if not count_kind:
            assert self._reference_steps is not None
            positions = batch.number_column(self._reference_steps)
            if positions is None:
                return []  # reference path never resolves: every row skipped
        items = batch.decode()
        out: List[Element] = []
        windower_add = self._windower.add
        emit = self._emit
        for offset, i in enumerate(batch.rows):
            if count_kind:
                position = float(self._count)
                self._count += 1
            else:
                reference = positions[i]
                if reference is None:
                    continue
                position = reference
            out.extend(map(emit, windower_add(position, items[offset])))
        return out

    def flush(self) -> List[Element]:
        return [self._emit(batch) for batch in self._windower.flush()]

    def _position(self, item: Element) -> Optional[float]:
        if self.spec.window.kind == "count":
            position = float(self._count)
            self._count += 1
            return position
        assert self._reference_steps is not None
        return item.number(self._reference_steps)

    @staticmethod
    def _emit(batch: WindowBatch[Element]) -> Element:
        return Element("window", children=[item.copy() for item in batch.contents])
