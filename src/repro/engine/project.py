"""The projection operator π."""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, List, Tuple, Union

from ..xmlkit import Element, Path, prune_to_paths
from .operators import Operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columnar import ColumnBatch


class ProjectOperator(Operator):
    """Prune items to the projection's output subtrees.

    Items whose retained content is empty are dropped entirely — an
    item carrying none of the projected elements contributes nothing
    downstream (and the paper's size formula assigns it zero payload).
    """

    kind = "projection"
    columnar = True

    def __init__(self, output_elements: FrozenSet[Path], item_path: Path) -> None:
        self.item_path = item_path
        self._relative = [path.relative_to(item_path) for path in output_elements]
        #: Step tuples of the retained paths, precomputed once for the
        #: columnar kernel's shape-prune cache key.
        self._keep_steps: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(path.steps) for path in self._relative
        )

    def process(self, item: Element) -> List[Element]:
        pruned = prune_to_paths(item, self._relative)
        return [pruned] if pruned is not None else []

    def process_columns(
        self, batch: "ColumnBatch"
    ) -> Union[List[Element], "ColumnBatch"]:
        """Columnar projection: swap the batch's virtual shape.

        Pruning is structural, so one shape-level prune answers for
        every row: a ``None`` pruned shape means every item of this
        shape prunes to nothing (all rows dropped), anything else is a
        pure metadata change — no trees are built until a downstream
        boundary decodes.  Byte accounting flows from the pruned
        shape's size columns, identical to freezing the pruned trees.
        """
        vshape = batch.vshape.prune(self._keep_steps)
        if vshape is None:
            return batch.derive([])
        return batch.project(vshape)
