"""The projection operator π."""

from __future__ import annotations

from typing import FrozenSet, List

from ..xmlkit import Element, Path, prune_to_paths
from .operators import Operator


class ProjectOperator(Operator):
    """Prune items to the projection's output subtrees.

    Items whose retained content is empty are dropped entirely — an
    item carrying none of the projected elements contributes nothing
    downstream (and the paper's size formula assigns it zero payload).
    """

    kind = "projection"

    def __init__(self, output_elements: FrozenSet[Path], item_path: Path) -> None:
        self.item_path = item_path
        self._relative = [path.relative_to(item_path) for path in output_elements]

    def process(self, item: Element) -> List[Element]:
        pruned = prune_to_paths(item, self._relative)
        return [pruned] if pruned is not None else []
