"""The stream execution engine (the DSMS substrate).

Push-based operators for the WXQuery fragment, pipelines, and the
measured network simulation (:class:`StreamSimulator`).
"""

from .aggregate import (
    PartialAggregate,
    ReAggregateOperator,
    WindowAggregateOperator,
    filter_accepts,
    partial_to_wire,
    wire_to_partial,
)
from .eval import item_number, rebase, satisfies
from .executor import (
    ExecutionError,
    MaterializingSimulator,
    StreamSimulator,
    interleave_round_robin,
    topological_streams,
)
from .fanout import PrefixStage, PrefixTree, group_pipelines
from .metrics import RunMetrics
from .operators import EngineError, Operator, build_operator
from .pipeline import Pipeline
from .project import ProjectOperator
from .restructure import RestructureOperator, Restructurer
from .select import SelectOperator
from .udf import DEFAULT_UDF_REGISTRY, UdfOperator, UdfRegistry, clear_default_registry
from .window import (
    ReorderBuffer,
    SlidingWindower,
    WindowBatch,
    WindowContentsOperator,
)

__all__ = [
    "EngineError",
    "ExecutionError",
    "MaterializingSimulator",
    "Operator",
    "PartialAggregate",
    "Pipeline",
    "PrefixStage",
    "PrefixTree",
    "ProjectOperator",
    "ReAggregateOperator",
    "ReorderBuffer",
    "RestructureOperator",
    "Restructurer",
    "RunMetrics",
    "SelectOperator",
    "SlidingWindower",
    "StreamSimulator",
    "DEFAULT_UDF_REGISTRY",
    "UdfOperator",
    "UdfRegistry",
    "clear_default_registry",
    "WindowAggregateOperator",
    "WindowBatch",
    "WindowContentsOperator",
    "build_operator",
    "filter_accepts",
    "group_pipelines",
    "interleave_round_robin",
    "item_number",
    "partial_to_wire",
    "rebase",
    "satisfies",
    "topological_streams",
    "wire_to_partial",
]
