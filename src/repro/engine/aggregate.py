"""Window-based aggregation operators and the partial-aggregate wire
format (Sections 2 and 3.3).

The wire format is the paper's internal representation: ``avg``
aggregates travel as *(sum, count)* pairs so they can be reused for
``sum`` and ``count`` subscriptions and recombined into coarser
windows; distributive aggregates carry exactly their own value.  The
final scalar is computed during post-processing at the subscriber's
super-peer (``sum/count`` for ``avg``).

Operators:

* :class:`WindowAggregateOperator` — fold stream items into per-window
  partial aggregates (fresh aggregation);
* :class:`ReAggregateOperator` — combine partial aggregates of a reused
  stream into a subscription's coarser windows (Figure 5), or apply an
  additional result filter / operator conversion for identical windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..predicates import ZERO, PredicateGraph
from ..properties import AggregationSpec, ReAggregationSpec
from ..xmlkit import Element, Path
from .eval import rebase
from .operators import EngineError, Operator
from .window import SlidingWindower, WindowBatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columnar import ColumnBatch


# ----------------------------------------------------------------------
# Partial aggregates
# ----------------------------------------------------------------------
@dataclass
class PartialAggregate:
    """Mergeable per-window state covering all five functions Φ."""

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    @classmethod
    def of_values(cls, values: Sequence[float]) -> "PartialAggregate":
        partial = cls()
        for value in values:
            partial.fold(value)
        return partial

    def fold(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def merge(self, other: "PartialAggregate") -> None:
        self.count += other.count
        self.total += other.total
        for value in (other.minimum,):
            if value is not None:
                self.minimum = value if self.minimum is None else min(self.minimum, value)
        for value in (other.maximum,):
            if value is not None:
                self.maximum = value if self.maximum is None else max(self.maximum, value)

    def final(self, function: str) -> Optional[float]:
        """The subscriber-facing scalar; ``None`` for an empty window
        where the function is undefined (min/max/avg)."""
        if function not in ("min", "max", "sum", "count", "avg"):
            raise EngineError(f"unknown aggregation function {function!r}")
        if function == "count":
            return float(self.count)
        if function == "sum":
            return self.total
        if self.count == 0:
            return None
        if function == "min":
            return self.minimum
        if function == "max":
            return self.maximum
        return self.total / self.count


def _number_text(value: float) -> str:
    """Canonical numeric rendering (integers without trailing ``.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def partial_to_wire(partial: PartialAggregate, function: str) -> Element:
    """Serialize a partial aggregate for transmission.

    ``avg``/``sum`` carry ``(sum, count)`` — sum alone would suffice for
    ``sum`` but the count is what makes avg-reuse work (Section 3.3);
    ``count`` carries the count; ``min``/``max`` their value (omitted
    for empty windows).
    """
    children: List[Element] = []
    if function in ("avg", "sum"):
        children.append(Element("sum", text=_number_text(partial.total)))
        children.append(Element("count", text=partial.count))
    elif function == "count":
        children.append(Element("count", text=partial.count))
    elif function in ("min", "max"):
        value = partial.minimum if function == "min" else partial.maximum
        if value is not None:
            children.append(Element(function, text=_number_text(value)))
        children.append(Element("count", text=partial.count))
    else:
        raise EngineError(f"unknown aggregation function {function!r}")
    return Element("agg", children=children)


def wire_to_partial(element: Element, function: str) -> PartialAggregate:
    """Parse a wire item produced by :func:`partial_to_wire`."""
    if element.tag != "agg":
        raise EngineError(f"expected an <agg> item, got <{element.tag}>")
    partial = PartialAggregate()
    count = element.child("count")
    partial.count = int(count.text) if count is not None and count.text else 0
    total = element.child("sum")
    if total is not None and total.text is not None:
        partial.total = float(total.text)
    for tag in ("min", "max"):
        node = element.child(tag)
        if node is not None and node.text is not None:
            value = float(node.text)
            if tag == "min":
                partial.minimum = value
            else:
                partial.maximum = value
    del function  # format is self-describing; kept for call-site clarity
    return partial


# ----------------------------------------------------------------------
# Result filters
# ----------------------------------------------------------------------
def filter_accepts(graph: PredicateGraph, value: Optional[float]) -> bool:
    """Evaluate a result filter (bounds on the aggregate value).

    Empty-window aggregates (``None`` value) never pass a non-empty
    filter — a suppressed value must not be transmitted.
    """
    if graph.is_empty():
        return True
    if value is None:
        return False
    for (source, target), bound in graph.edges.items():
        left = 0.0 if source == ZERO else value
        right = 0.0 if target == ZERO else value
        limit = right + float(bound.value)
        if bound.strict:
            if not left < limit:
                return False
        elif not left <= limit:
            return False
    return True


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
class WindowAggregateOperator(Operator):
    """Fresh window-based aggregation over (already selected) items.

    Emits one partial-aggregate wire item per completed window.  With an
    empty result filter, *every* window is emitted — including empty
    time-based windows — so downstream re-aggregation sees the regular
    cadence the index arithmetic of Figure 5 relies on.  A non-empty
    result filter suppresses failing windows (and therefore pins window
    equality during matching, see MatchAggregations).
    """

    kind = "aggregation"
    columnar = True

    def __init__(
        self, spec: AggregationSpec, item_path: Path, reorder_capacity: int = 0
    ) -> None:
        """``reorder_capacity > 0`` enables the fuzzy-order relaxation of
        Section 2: a fixed-size buffer derives the total order of the
        reference element before windows are formed."""
        self.spec = spec
        self.item_path = item_path
        self._windower: SlidingWindower[float] = SlidingWindower(
            float(spec.window.size), float(spec.window.step)
        )
        self._count = 0
        # Rebase both navigation paths once; per-item evaluation is then
        # pure tree walking (same values as item_number on the spec paths).
        self._aggregated_steps = rebase(spec.aggregated_path, item_path).steps
        self._reference_steps = (
            None
            if spec.window.reference is None
            else rebase(spec.window.reference, item_path).steps
        )
        if reorder_capacity > 0 and spec.window.kind == "diff":
            from .window import ReorderBuffer

            self._reorder: Optional["ReorderBuffer[float]"] = ReorderBuffer(
                reorder_capacity
            )
        else:
            self._reorder = None

    def process(self, item: Element) -> List[Element]:
        position = self._position(item)
        if position is None:
            return []
        value = item.number(self._aggregated_steps)
        payload = value if value is not None else float("nan")
        if self._reorder is None:
            batches = self._windower.add(position, payload)
        else:
            batches = []
            for ordered_position, ordered_payload in self._reorder.add(position, payload):
                batches.extend(self._windower.add(ordered_position, ordered_payload))
        return [w for w in map(self._emit, batches) if w is not None]

    def process_columns(self, batch: "ColumnBatch") -> List[Element]:
        """Columnar aggregation: gather the position/value columns once,
        then run the identical sequential window folds.

        The windower's float arithmetic is order-sensitive, so rows are
        folded one by one in batch order — same calls, same state, same
        emitted wire items as the tree path; only the per-row tree
        navigation and float parsing are replaced by column reads.
        Window state is shared with :meth:`process`, so columnar and
        tree batches can interleave across fallback boundaries.
        """
        rows = batch.rows
        values = batch.number_column(self._aggregated_steps)
        count_kind = self.spec.window.kind == "count"
        if not count_kind:
            assert self._reference_steps is not None
            positions = batch.number_column(self._reference_steps)
            if positions is None:
                return []  # reference path never resolves: every row skipped
        out: List[Element] = []
        nan = float("nan")
        emit = self._emit
        windower_add = self._windower.add
        reorder = self._reorder
        for i in rows:
            if count_kind:
                position = float(self._count)
                self._count += 1
            else:
                reference = positions[i]
                if reference is None:
                    continue
                position = reference
            value = None if values is None else values[i]
            payload = value if value is not None else nan
            if reorder is None:
                batches = windower_add(position, payload)
            else:
                batches = []
                for ordered_position, ordered_payload in reorder.add(
                    position, payload
                ):
                    batches.extend(windower_add(ordered_position, ordered_payload))
            out.extend(w for w in map(emit, batches) if w is not None)
        return out

    def flush(self) -> List[Element]:
        batches = []
        if self._reorder is not None:
            for position, payload in self._reorder.flush():
                batches.extend(self._windower.add(position, payload))
        batches.extend(self._windower.flush())
        return [w for w in map(self._emit, batches) if w is not None]

    def _position(self, item: Element) -> Optional[float]:
        if self.spec.window.kind == "count":
            position = float(self._count)
            self._count += 1
            return position
        assert self._reference_steps is not None
        return item.number(self._reference_steps)

    def _emit(self, batch: WindowBatch[float]) -> Optional[Element]:
        values = [v for v in batch.contents if v == v]  # drop NaN markers
        partial = PartialAggregate.of_values(values)
        if not filter_accepts(self.spec.result_filter, partial.final(self.spec.function)):
            return None
        return partial_to_wire(partial, self.spec.function)


class ReAggregateOperator(Operator):
    """Rebuild a subscription's windows from reused partial aggregates.

    Two modes (see :class:`~repro.properties.model.ReAggregationSpec`):

    * identical windows — pass-through with operator conversion (e.g.
      reused ``avg`` stream serving a ``sum`` subscription) and the
      subscription's own, more restrictive result filter;
    * coarser windows — the Figure 5 index arithmetic: the new window
      ``n`` merges the reused windows with arrival indices
      ``(n·µ' + j·∆) / µ`` for ``j = 0 … ∆'/∆ − 1``; skipped values are
      buffered until no longer needed.
    """

    kind = "reaggregation"

    def __init__(self, spec: ReAggregationSpec) -> None:
        self.spec = spec
        reused, new = spec.reused.window, spec.new.window
        self._passthrough = reused == new
        self._merge_count = int(new.size / reused.size)
        self._stride = int(new.size / self._merge_count / reused.step)  # ∆/µ
        self._advance = int(new.step / reused.step)                      # µ'/µ
        self._arrival = 0
        self._window_index = 0
        self._buffer: Dict[int, PartialAggregate] = {}

    def process(self, item: Element) -> List[Element]:
        partial = wire_to_partial(item, self.spec.reused.function)
        if self._passthrough:
            return self._emit_if_accepted(partial)
        self._buffer[self._arrival] = partial
        self._arrival += 1
        out: List[Element] = []
        while True:
            needed = self._needed_indices(self._window_index)
            if any(index not in self._buffer for index in needed):
                if needed[-1] >= self._arrival:
                    break  # future arrivals still required
                # A needed index was consumed/pruned: impossible by
                # construction, but guard against drift explicitly.
                raise EngineError("re-aggregation lost a needed partial")
            merged = PartialAggregate()
            for index in needed:
                merged.merge(self._buffer[index])
            out.extend(self._emit_if_accepted(merged))
            self._window_index += 1
            floor = min(self._needed_indices(self._window_index))
            self._buffer = {i: p for i, p in self._buffer.items() if i >= floor}
        return out

    def _needed_indices(self, window_index: int) -> List[int]:
        base = window_index * self._advance
        return [base + j * self._stride for j in range(self._merge_count)]

    def _emit_if_accepted(self, partial: PartialAggregate) -> List[Element]:
        final = partial.final(self.spec.new.function)
        if not filter_accepts(self.spec.new.result_filter, final):
            return []
        return [partial_to_wire(partial, self.spec.new.function)]
