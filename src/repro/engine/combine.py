"""Combining multiple input streams at post-processing (Section 2/3.3).

"If a subscription references more than one input stream, each stream
is handled individually by the subscription algorithm ... Any
combination of input data streams as demanded by the subscription is
performed at this peer during the final post-processing step and the
result of this combination is not considered for reuse."

The flat WXQuery fragment has no cross-stream predicates (the analyzer
rejects joins), so the only combination a subscription can demand is
structural: a ``return`` clause referencing bindings of several
streams.  Over unbounded streams the natural continuous semantics is
**latest-value combination**: the subscriber-facing result is rebuilt
whenever any input delivers a new item, pairing it with the most recent
item of every other input.  A result is only produced once every input
has delivered at least one item.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..wxquery import AnalyzedQuery
from ..xmlkit import Element
from .restructure import Restructurer, Value


class LatestValueCombiner:
    """Post-processing for subscriptions over several input streams."""

    def __init__(self, analyzed: AnalyzedQuery) -> None:
        self.analyzed = analyzed
        self._restructurer = Restructurer(analyzed)
        self._streams = analyzed.streams()
        if len(self._streams) < 2:
            raise ValueError("LatestValueCombiner requires a multi-input query")
        #: Most recent item per input stream.
        self._latest: Dict[str, Element] = {}
        #: Root for-variable per stream (what each delivered item binds).
        self._roots = {
            stream: analyzed.binding_for_stream(stream).var
            for stream in self._streams
        }

    @property
    def streams(self) -> List[str]:
        return list(self._streams)

    def push(self, stream: str, item: Element) -> List[Element]:
        """Deliver one item of ``stream``; return any produced results."""
        if stream not in self._roots:
            raise ValueError(f"query has no input stream {stream!r}")
        self._latest[stream] = item
        if len(self._latest) < len(self._streams):
            return []  # some input has not delivered yet
        bindings: Dict[str, Value] = {}
        for name, root_var in self._roots.items():
            bindings[root_var] = self._latest[name]
        return self._restructurer.build_with_bindings(bindings)

    def latest(self, stream: str) -> Optional[Element]:
        return self._latest.get(stream)
