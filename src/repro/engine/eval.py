"""Item-level evaluation helpers: path values and predicate graphs.

The selection operator and the restructurer both need to resolve
absolute paths (as used in predicate-graph node labels) against concrete
stream items, whose root corresponds to the *item path* of the stream
(e.g. a ``photon`` element for item path ``photons/photon``).
"""

from __future__ import annotations

from typing import Optional

from ..predicates import ZERO, PredicateGraph
from ..xmlkit import Element, Path


def rebase(absolute: Path, item_path: Path) -> Path:
    """Turn an absolute path into a path relative to the item root."""
    return absolute.relative_to(item_path)


def item_number(item: Element, absolute: Path, item_path: Path) -> Optional[float]:
    """Numeric value at ``absolute`` within ``item``, or ``None``."""
    return rebase(absolute, item_path).number(item)


def satisfies(item: Element, graph: PredicateGraph, item_path: Path) -> bool:
    """Evaluate a conjunctive predicate graph against one item.

    Every edge ``u → v`` with bound ``(c, strict)`` asserts
    ``value(u) ≤ value(v) + c`` (strict: ``<``); the zero node has the
    value 0.  Missing or non-numeric operands fail the predicate —
    conjunctive semantics cannot be satisfied by absent data.
    """
    for (source, target), bound in graph.edges.items():
        left = 0.0 if source == ZERO else item_number(item, source, item_path)
        right = 0.0 if target == ZERO else item_number(item, target, item_path)
        if left is None or right is None:
            return False
        limit = right + float(bound.value)
        if bound.strict:
            if not left < limit:
                return False
        elif not left <= limit:
            return False
    return True
