"""The selection operator σ."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..predicates import ZERO, PredicateGraph
from ..predicates.vectorized import filter_rows
from ..xmlkit import Element, Path
from .eval import rebase
from .operators import Operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columnar import ColumnBatch

#: One compiled predicate edge: rebased navigation steps for both
#: operands (``None`` encodes the zero node), the additive bound, and
#: strictness.  Precompiled once per operator so per-item evaluation
#: never constructs :class:`~repro.xmlkit.Path` objects.
_CompiledEdge = Tuple[Optional[Tuple[str, ...]], Optional[Tuple[str, ...]], float, bool]


def _compile_edges(graph: PredicateGraph, item_path: Path) -> List[_CompiledEdge]:
    edges: List[_CompiledEdge] = []
    for (source, target), bound in graph.edges.items():
        source_steps = None if source == ZERO else rebase(source, item_path).steps
        target_steps = None if target == ZERO else rebase(target, item_path).steps
        edges.append((source_steps, target_steps, float(bound.value), bound.strict))
    return edges


class SelectOperator(Operator):
    """Filter items by a conjunctive predicate graph.

    Semantically identical to evaluating :func:`repro.engine.eval.satisfies`
    per item; the predicate edges are compiled at construction time so the
    per-item work is pure tree navigation.
    """

    kind = "selection"
    columnar = True

    def __init__(self, graph: PredicateGraph, item_path: Path) -> None:
        self.graph = graph
        self.item_path = item_path
        self._edges = _compile_edges(graph, item_path)
        self.seen = 0
        self.passed = 0

    def process(self, item: Element) -> List[Element]:
        self.seen += 1
        if self._accepts(item):
            self.passed += 1
            return [item]
        return []

    def process_columns(self, batch: "ColumnBatch") -> "ColumnBatch":
        """Vectorized selection: refine the batch's row vector.

        One fused comparison pass per predicate edge
        (:func:`repro.predicates.vectorized.filter_rows`), byte-
        identical to per-item :meth:`_accepts` over the decoded rows.
        """
        self.seen += len(batch)
        rows = filter_rows(self._edges, batch.rows, batch.number_column)
        self.passed += len(rows)
        return batch.derive(rows)

    def _accepts(self, item: Element) -> bool:
        for source_steps, target_steps, value, strict in self._edges:
            # Element.number returns None for a missing path or a
            # non-numeric text; either operand being None fails the
            # whole conjunction.  The zero node contributes 0.0.
            left: Optional[float] = (
                0.0 if source_steps is None else item.number(source_steps)
            )
            right: Optional[float] = (
                0.0 if target_steps is None else item.number(target_steps)
            )
            if left is None or right is None:
                return False
            limit = right + value
            if strict:
                if not left < limit:
                    return False
            elif not left <= limit:
                return False
        return True

    @property
    def observed_selectivity(self) -> float:
        """Measured pass fraction (compare against the estimate)."""
        return self.passed / self.seen if self.seen else 1.0
