"""The selection operator σ."""

from __future__ import annotations

from typing import List

from ..predicates import PredicateGraph
from ..xmlkit import Element, Path
from .eval import satisfies
from .operators import Operator


class SelectOperator(Operator):
    """Filter items by a conjunctive predicate graph."""

    kind = "selection"

    def __init__(self, graph: PredicateGraph, item_path: Path) -> None:
        self.graph = graph
        self.item_path = item_path
        self.seen = 0
        self.passed = 0

    def process(self, item: Element) -> List[Element]:
        self.seen += 1
        if satisfies(item, self.graph, self.item_path):
            self.passed += 1
            return [item]
        return []

    @property
    def observed_selectivity(self) -> float:
        """Measured pass fraction (compare against the estimate)."""
        return self.passed / self.seen if self.seen else 1.0
