"""Post-processing: rebuild the subscriber-facing result structure.

Restructuring — new elements, renaming, reordering, the final ``avg =
sum/count`` computation — happens exactly once, at the super-peer of the
subscribing thin-peer, and its output is never reused in the network
(Section 2).  The :class:`Restructurer` evaluates the analyzed query's
``return`` clause against each delivered stream item:

* plain subscriptions: the item is a (selected, projected) input item;
* aggregate subscriptions: the item is a partial-aggregate wire element
  and the ``let`` variable binds to its finalized scalar;
* window-contents subscriptions: the item is a ``<window>`` batch and
  the ``for`` variable binds to the batch's items.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from ..wxquery import (
    AnalyzedQuery,
    Comparison,
    DirectElement,
    EmptyElement,
    EnclosedExpr,
    Expr,
    IfExpr,
    PathOutput,
    SequenceExpr,
    VarOutput,
)
from ..xmlkit import Element
from .aggregate import wire_to_partial
from .operators import EngineError, Operator

#: A binding value during return-clause evaluation.
Value = Union[Element, float, List[Element]]

#: A compiled return-clause expression: bindings -> evaluated values.
Compiled = Callable[[Dict[str, "Value"]], List["Value"]]


class Restructurer:
    """Evaluate a subscription's ``return`` clause over stream items.

    The return expression is compiled once into a tree of closures
    (:meth:`_compile`); per-item evaluation then runs without AST
    type dispatch — the executor restructures every delivered item of
    every subscription, so this is one of the engine's hottest paths.
    """

    def __init__(self, analyzed: AnalyzedQuery) -> None:
        self.analyzed = analyzed
        self._aggregations = analyzed.aggregations()
        self._compiled = self._compile(analyzed.flwr.return_expr)

    def __reduce__(self) -> tuple:
        """Pickle as the analyzed query; the closure tree recompiles on
        the receiving side (restructuring is stateless per item)."""
        return (Restructurer, (self.analyzed,))

    # ------------------------------------------------------------------
    def build(self, item: Element) -> List[Element]:
        """Produce the result elements for one delivered stream item."""
        bindings = self._bind(item)
        if not bindings:
            return []
        return _as_elements(self._compiled(bindings))

    def build_with_bindings(self, bindings: Dict[str, Value]) -> List[Element]:
        """Evaluate the return clause under explicit variable bindings.

        Used by multi-input combination
        (:class:`repro.engine.combine.LatestValueCombiner`), which binds
        each input stream's root variable to its latest item.
        """
        if not bindings:
            return []
        return _as_elements(self._compiled(dict(bindings)))

    def _bind(self, item: Element) -> Dict[str, Value]:
        bindings: Dict[str, Value] = {}
        if item.tag == "agg" and self._aggregations:
            aggregation = self._aggregations[0]
            partial = wire_to_partial(item, aggregation.aggregate or "avg")
            value = partial.final(aggregation.aggregate or "avg")
            if value is None:
                return {}  # empty window: nothing to report
            bindings[aggregation.var] = value
            if aggregation.source_var is not None:
                bindings[aggregation.source_var] = []
            return bindings
        for binding in self.analyzed.bindings.values():
            if binding.kind == "for":
                if item.tag == "window":
                    bindings[binding.var] = list(item.children)
                else:
                    bindings[binding.var] = item
        return bindings

    # ------------------------------------------------------------------
    # Expression compilation
    # ------------------------------------------------------------------
    def _compile(self, expr: Expr) -> "Compiled":
        """Translate a return expression into a closure tree.

        Each closure maps ``bindings -> List[Value]``; per-item
        evaluation pays no AST isinstance dispatch.  Bindings are never
        empty here — :meth:`build` filters empty-window items first.
        """
        if isinstance(expr, EmptyElement):
            tag = expr.tag
            return lambda bindings: [Element(tag)]
        if isinstance(expr, DirectElement):
            tag = expr.tag
            pieces = [self._compile(piece) for piece in expr.content]
            def direct(bindings: Dict[str, Value]) -> List[Value]:
                parts: List[Value] = []
                for piece in pieces:
                    parts.extend(piece(bindings))
                return [_assemble(tag, parts)]
            return direct
        if isinstance(expr, EnclosedExpr):
            return self._compile(expr.body)
        if isinstance(expr, SequenceExpr):
            items = [self._compile(piece) for piece in expr.items]
            def sequence(bindings: Dict[str, Value]) -> List[Value]:
                out: List[Value] = []
                for piece in items:
                    out.extend(piece(bindings))
                return out
            return sequence
        if isinstance(expr, IfExpr):
            atoms = expr.condition.atoms
            then_branch = self._compile(expr.then_branch)
            else_branch = self._compile(expr.else_branch)
            holds = self._holds
            return lambda bindings: (
                then_branch(bindings) if holds(atoms, bindings) else else_branch(bindings)
            )
        if isinstance(expr, PathOutput):
            var, steps = expr.var, expr.path.steps
            def navigate(bindings: Dict[str, Value]) -> List[Value]:
                value = bindings.get(var)
                if value is None:
                    raise EngineError(f"unbound variable ${var} at restructuring")
                if isinstance(value, float):
                    raise EngineError(f"cannot navigate into scalar ${var}")
                roots = value if isinstance(value, list) else [value]
                found: List[Value] = []
                for root in roots:
                    found.extend(node.copy() for node in root.find_all(steps))
                return found
            return navigate
        if isinstance(expr, VarOutput):
            var = expr.var
            def output(bindings: Dict[str, Value]) -> List[Value]:
                value = bindings.get(var)
                if value is None:
                    raise EngineError(f"unbound variable ${var} at restructuring")
                if isinstance(value, list):
                    return [element.copy() for element in value]
                if isinstance(value, Element):
                    return [value.copy()]
                return [value]
            return output
        raise EngineError(f"cannot restructure expression {expr!r}")

    def _holds(self, atoms, bindings: Dict[str, Value]) -> bool:
        for atom in atoms:
            if not self._atom_holds(atom, bindings):
                return False
        return True

    def _atom_holds(self, atom: Comparison, bindings: Dict[str, Value]) -> bool:
        left = self._operand_value(atom.left, bindings)
        if atom.right_operand is not None:
            right = self._operand_value(atom.right_operand, bindings)
        else:
            right = 0.0
        if left is None or right is None:
            return False
        limit = right + float(atom.constant)
        return {
            "=": left == limit,
            "<": left < limit,
            "<=": left <= limit,
            ">": left > limit,
            ">=": left >= limit,
        }.get(atom.op, False)

    def _operand_value(self, operand, bindings: Dict[str, Value]) -> Optional[float]:
        if operand.var is None:
            return None
        value = bindings.get(operand.var)
        if value is None:
            return None
        if isinstance(value, float):
            return value
        if isinstance(value, list):
            return None
        if operand.path.is_empty():
            return None
        return operand.path.number(value)


def _assemble(tag: str, parts: List[Value]) -> Element:
    """Build a constructed element from evaluated content pieces."""
    elements = [part for part in parts if isinstance(part, Element)]
    scalars = [part for part in parts if not isinstance(part, Element)]
    if elements and scalars:
        raise EngineError(
            f"mixed element/scalar content in constructed <{tag}> is outside "
            "the supported data model"
        )
    if elements:
        return Element(tag, children=elements)
    if scalars:
        text = " ".join(_scalar_text(scalar) for scalar in scalars)
        return Element(tag, text=text)
    return Element(tag)


def _scalar_text(value: Value) -> str:
    assert isinstance(value, float)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _as_elements(values: List[Value]) -> List[Element]:
    out: List[Element] = []
    for value in values:
        if isinstance(value, Element):
            out.append(value)
        else:
            raise EngineError("top-level restructured output must be elements")
    return out


class RestructureOperator(Operator):
    """Operator wrapper around a :class:`Restructurer`."""

    kind = "restructure"

    def __init__(self, restructurer: Restructurer) -> None:
        self.restructurer = restructurer

    def process(self, item: Element) -> List[Element]:
        return self.restructurer.build(item)
