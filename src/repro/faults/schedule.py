"""Deterministic fault schedules over simulated stream time.

The paper's super-peer backbone is a P2P network whose peers "may
connect to and disconnect from the network at any time" (Section 1).
This module expresses such churn as *data*: a :class:`FaultSchedule` is
an ordered list of :class:`FaultEvent` records — super-peer crashes,
link failures, and the corresponding rejoins — each pinned to a point
in simulated stream time.  The executor applies due events between
batches, the :class:`~repro.sharing.repair.PlanRepairer` reacts to
them, and because the schedule is plain data the whole churn run stays
bit-for-bit reproducible.

Events at the same time fire in schedule order (stable sort), so a
crash-then-rejoin written in that order behaves as written.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from ..network.topology import Link, Network


class FaultError(Exception):
    """Raised for malformed fault schedules or inapplicable events."""


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something happens to the backbone at ``time``."""

    time: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise FaultError(f"fault time must be finite and >= 0, got {self.time!r}")

    def apply(self, net: Network) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SuperPeerCrash(FaultEvent):
    """A super-peer disconnects; its links go down with it."""

    peer: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.peer:
            raise FaultError("SuperPeerCrash needs a peer name")

    def apply(self, net: Network) -> None:
        net.remove_super_peer(self.peer)

    def describe(self) -> str:
        return f"t={self.time:g}: super-peer {self.peer} crashes"


@dataclass(frozen=True)
class SuperPeerRejoin(FaultEvent):
    """A crashed super-peer reconnects with its surviving links."""

    peer: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.peer:
            raise FaultError("SuperPeerRejoin needs a peer name")

    def apply(self, net: Network) -> None:
        net.restore_super_peer(self.peer)

    def describe(self) -> str:
        return f"t={self.time:g}: super-peer {self.peer} rejoins"


@dataclass(frozen=True)
class LinkFailure(FaultEvent):
    """One backbone connection fails; both endpoints stay up."""

    a: str = ""
    b: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.a or not self.b:
            raise FaultError("LinkFailure needs both endpoints")

    def apply(self, net: Network) -> None:
        net.remove_link(self.a, self.b)

    def describe(self) -> str:
        return f"t={self.time:g}: link {Link(self.a, self.b)} fails"


@dataclass(frozen=True)
class LinkRestore(FaultEvent):
    """A failed connection comes back."""

    a: str = ""
    b: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.a or not self.b:
            raise FaultError("LinkRestore needs both endpoints")

    def apply(self, net: Network) -> None:
        net.restore_link(self.a, self.b)

    def describe(self) -> str:
        return f"t={self.time:g}: link {Link(self.a, self.b)} restored"


class FaultSchedule:
    """An immutable, time-ordered list of fault events.

    Events are stably sorted by time, preserving the written order of
    simultaneous events.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        materialized = list(events)
        for event in materialized:
            if not isinstance(event, FaultEvent):
                raise FaultError(f"not a fault event: {event!r}")
        self._events: List[FaultEvent] = sorted(
            materialized, key=lambda event: event.time
        )

    # ------------------------------------------------------------------
    def events(self) -> List[FaultEvent]:
        return list(self._events)

    def events_due(self, start: float, end: float) -> List[FaultEvent]:
        """Events with ``start <= time < end`` (half-open, like epochs)."""
        return [e for e in self._events if start <= e.time < end]

    def boundaries(self, duration: float) -> List[float]:
        """Distinct event times inside ``(0, duration)``, ascending."""
        seen: List[float] = []
        for event in self._events:
            if 0.0 < event.time < duration and event.time not in seen:
                seen.append(event.time)
        return seen

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def describe(self) -> List[str]:
        return [event.describe() for event in self._events]


def single_crash(time: float, peer: str, rejoin_at: float = 0.0) -> FaultSchedule:
    """Convenience: one super-peer crash, optionally followed by a rejoin."""
    events: Sequence[FaultEvent] = (
        (SuperPeerCrash(time, peer), SuperPeerRejoin(rejoin_at, peer))
        if rejoin_at > time
        else (SuperPeerCrash(time, peer),)
    )
    return FaultSchedule(events)


def staggered_crashes(
    start: float,
    peers: Sequence[str],
    spacing: float = 2.0,
    downtime: float = 0.0,
) -> FaultSchedule:
    """A rolling-churn schedule: ``peers`` crash one after another.

    Peer ``i`` crashes at ``start + i * spacing``; ``downtime > 0``
    additionally rejoins each peer that long after its crash.  Staggered
    crashes are the stress pattern for shard re-certification: every
    event forces a plan repair and (on the sharded executor) a
    re-partition, and overlapping downtimes exercise repairs computed on
    an already-degraded backbone.
    """
    if spacing <= 0:
        raise FaultError(f"crash spacing must be > 0, got {spacing!r}")
    events: List[FaultEvent] = []
    for index, peer in enumerate(peers):
        crash_at = start + index * spacing
        events.append(SuperPeerCrash(crash_at, peer))
        if downtime > 0:
            events.append(SuperPeerRejoin(crash_at + downtime, peer))
    return FaultSchedule(events)
