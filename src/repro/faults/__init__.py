"""Deterministic fault injection for the super-peer backbone."""

from .schedule import (
    FaultError,
    FaultEvent,
    FaultSchedule,
    LinkFailure,
    LinkRestore,
    SuperPeerCrash,
    SuperPeerRejoin,
    single_crash,
    staggered_crashes,
)

__all__ = [
    "FaultError",
    "FaultEvent",
    "FaultSchedule",
    "LinkFailure",
    "LinkRestore",
    "SuperPeerCrash",
    "SuperPeerRejoin",
    "single_crash",
    "staggered_crashes",
]
