"""Reproduction of *Data Stream Sharing* (Kuntschke & Kemper, EDBT 2006).

A StreamGlobe-style data stream management system for grid-based P2P
networks: continuous WXQuery subscriptions over XML data streams,
answered by reusing (parts of) streams already flowing in the network.

Top-level convenience imports cover the common entry points:

>>> from repro import StreamGlobe, parse_query, example_topology
>>> from repro import PhotonGenerator, PhotonStreamConfig

Subpackages
-----------
``repro.xmlkit``      XML substrate (elements, parser, paths, schemas)
``repro.wxquery``     the WXQuery subscription language (Section 2)
``repro.predicates``  predicate graphs and implication (Section 3.3)
``repro.properties``  the properties representation (Section 3.1)
``repro.matching``    MatchProperties / MatchAggregations (Algorithm 2)
``repro.costmodel``   statistics, size/freq estimation, C(P) (Section 3.2)
``repro.network``     the super-peer backbone
``repro.engine``      push operators and the measured simulator
``repro.sharing``     Algorithm 1, strategies, the StreamGlobe facade
``repro.workload``    synthetic RASS photons, query templates, scenarios
``repro.bench``       harness regenerating every table and figure
"""

from .network.topology import Network, example_topology, grid_topology
from .properties import Properties, extract_properties
from .sharing import RegistrationResult, StreamGlobe
from .workload import PhotonGenerator, PhotonStreamConfig, scenario_one, scenario_two
from .wxquery import analyze, parse_query

__version__ = "1.0.0"

__all__ = [
    "Network",
    "PhotonGenerator",
    "PhotonStreamConfig",
    "Properties",
    "RegistrationResult",
    "StreamGlobe",
    "analyze",
    "example_topology",
    "extract_properties",
    "grid_topology",
    "parse_query",
    "scenario_one",
    "scenario_two",
    "__version__",
]
