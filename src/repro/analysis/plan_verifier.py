"""Static verification of a deployed stream network (pass "a").

Given a :class:`~repro.sharing.plan.Deployment` and its
:class:`~repro.network.topology.Network`, check every invariant the
incremental registration algorithm relies on but nothing re-checks at
runtime:

* **routes** — every installed stream's route is a cycle-free connected
  path rooted at its origin node, using only real topology links
  (``P10x``), and the per-node availability index mirrors the routes
  exactly;
* **sharing index** — the inverted signature index that serves indexed
  candidate lookup lists exactly the installed streams at exactly their
  route nodes, under their current content signatures (``P14x``);
* **derivation** — parents exist, taps sit on parent routes, originals
  carry no pipeline, and every child's content is actually producible
  from its parent (``P11x``);
* **delivery** — each subscription's delivered streams exist, terminate
  at the subscriber's super-peer, and satisfy the recorded per-input
  requirement (``P12x``);
* **usage ledger** — the committed traffic/load that feeds ``a_b(e)``
  and ``a_l(v)`` is consistent with the set of installed pipelines: no
  negative or ghost commitments, and no installed stream whose traffic
  or pipeline work was never committed (``P13x``);
* **operator typing** — every content chain and compensation pipeline
  type-checks stage-to-stage against the stream's schema (``T2xx``,
  see :mod:`repro.analysis.typecheck`).

The verifier is read-only and cheap (linear in streams × route length),
so :class:`~repro.sharing.system.StreamGlobe` can afford to run it as a
pre-flight hook after every registration.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Set, Tuple

from ..costmodel.statistics import StatisticsCatalog
from ..matching import match_stream_properties
from ..sharing.index import content_signature
from ..sharing.plan import Deployment, InstalledStream
from ..xmlkit.schema import Schema
from .diagnostics import AnalysisReport
from .typecheck import SchemaView, check_content, check_pipeline

__all__ = ["verify_deployment"]

#: Negative-commitment tolerance (mirrors the deregistration ledger).
_NEGATIVE_EPS = 1e-6
#: Float dust left by commit/release round-trips; anything below is
#: treated as "no commitment".
_DUST_EPS = 1e-3


def verify_deployment(
    deployment: Deployment,
    catalog: Optional[StatisticsCatalog] = None,
    schemas: Optional[Dict[str, Schema]] = None,
    title: str = "deployment verification",
) -> AnalysisReport:
    """Statically verify ``deployment``; returns the full report."""
    report = AnalysisReport(title=title)
    views = _build_views(deployment, catalog, schemas)

    for stream in deployment.streams.values():
        _check_route(deployment, stream, report)
        _check_derivation(deployment, stream, report, views)
    _check_availability_index(deployment, report)
    _check_sharing_index(deployment, report)
    _check_deliveries(deployment, report, views)
    _check_usage_ledger(deployment, report)
    return report


# ----------------------------------------------------------------------
# Schema views
# ----------------------------------------------------------------------
def _build_views(
    deployment: Deployment,
    catalog: Optional[StatisticsCatalog],
    schemas: Optional[Dict[str, Schema]],
) -> Dict[str, SchemaView]:
    views: Dict[str, SchemaView] = {}
    names = {stream.content.stream for stream in deployment.streams.values()}
    names.update(
        sp.stream
        for record in deployment.queries.values()
        for sp in record.properties.inputs
    )
    for name in names:
        if schemas and name in schemas:
            views[name] = SchemaView.from_schema(schemas[name], stream=name)
        elif catalog is not None and name in catalog:
            views[name] = SchemaView.from_statistics(catalog.for_stream(name))
    return views


# ----------------------------------------------------------------------
# P10x — routes
# ----------------------------------------------------------------------
def _check_route(
    deployment: Deployment, stream: InstalledStream, report: AnalysisReport
) -> None:
    net = deployment.net
    subject = f"stream {stream.stream_id!r}"
    for node in stream.route:
        if node not in net:
            report.add(
                "P101", subject, f"route node {node!r} does not exist in the topology"
            )
            return
    if stream.route[0] != stream.origin_node:
        report.add(
            "P104",
            subject,
            f"route starts at {stream.route[0]!r}, not at the origin node "
            f"{stream.origin_node!r}",
        )
    for a, b in stream.links():
        if not net.has_link(a, b):
            report.add(
                "P102",
                subject,
                f"route uses non-existent link {a}-{b}",
                hint="plans may only route along real topology edges",
            )
    repeats = [node for node, count in Counter(stream.route).items() if count > 1]
    if repeats:
        report.add(
            "P103",
            subject,
            f"route visits {', '.join(sorted(repeats))} more than once",
            hint="evaluation plans route streams along cycle-free trees "
            "(Section 3.3); a repeated node means a routing cycle",
        )


def _check_availability_index(deployment: Deployment, report: AnalysisReport) -> None:
    expected: Dict[str, Counter] = {node: Counter() for node in deployment.net}
    for stream in deployment.streams.values():
        for node in stream.route:
            if node in expected:
                expected[node][stream.stream_id] += 1
    for node, stream_ids in deployment._available.items():
        actual = Counter(stream_ids)
        # Sorted: diagnostic order must not depend on set hash order.
        for stream_id in sorted(set(expected.get(node, Counter())) - set(actual)):
            report.add(
                "P105",
                f"node {node}",
                f"availability index is missing stream {stream_id!r} "
                "although its route passes through",
            )
        for stream_id, count in actual.items():
            want = expected.get(node, Counter()).get(stream_id, 0)
            if count > want:
                report.add(
                    "P106",
                    f"node {node}",
                    f"availability index lists stream {stream_id!r} "
                    f"{count} time(s) but its route covers the node {want} time(s)",
                )


# ----------------------------------------------------------------------
# P14x — sharing index (indexed candidate lookup)
# ----------------------------------------------------------------------
def _check_sharing_index(deployment: Deployment, report: AnalysisReport) -> None:
    """The inverted signature index must mirror the deployment exactly.

    Indexed registration trusts the index as the *complete* candidate
    set: a missing entry silently hides a shareable stream (worse plans,
    never caught at runtime), a stale entry resurrects a released one.

    * ``P140`` — the index lists a stream that is not installed;
    * ``P141`` — the index lists a stream at a node off its route;
    * ``P142`` — an installed stream is missing from the index at some
      node of its route (or entirely);
    * ``P143`` — the indexed signature differs from the signature of the
      stream's current content.
    """
    index = deployment.sharing_index
    listed_nodes: Dict[str, Set[str]] = {}
    for node, stream_id, signature in index.entries():
        stream = deployment.streams.get(stream_id)
        if stream is None:
            report.add(
                "P140",
                f"node {node}",
                f"sharing index lists stream {stream_id!r}, which is not "
                "installed (stale entry)",
                hint="release_stream must discard the stream from the "
                "sharing index atomically",
            )
            continue
        if node not in stream.route:
            report.add(
                "P141",
                f"stream {stream_id!r}",
                f"sharing index lists the stream at {node}, which is not on "
                f"its route {'-'.join(stream.route)}",
            )
        listed_nodes.setdefault(stream_id, set()).add(node)

    for stream in deployment.streams.values():
        subject = f"stream {stream.stream_id!r}"
        signature = index.signature_of(stream.stream_id)
        if signature is None:
            report.add(
                "P142",
                subject,
                "stream is missing from the sharing index entirely",
                hint="install_stream must add every stream to the sharing "
                "index",
            )
            continue
        missing = set(stream.route) - listed_nodes.get(stream.stream_id, set())
        if missing:
            report.add(
                "P142",
                subject,
                f"sharing index misses the stream at route node(s) "
                f"{', '.join(sorted(missing))}",
            )
        if signature != content_signature(stream.content):
            report.add(
                "P143",
                subject,
                "indexed signature does not match the stream's current "
                "content (indexed lookups would mis-bucket it)",
            )


# ----------------------------------------------------------------------
# P11x — derivation
# ----------------------------------------------------------------------
def _check_derivation(
    deployment: Deployment,
    stream: InstalledStream,
    report: AnalysisReport,
    views: Dict[str, SchemaView],
) -> None:
    subject = f"stream {stream.stream_id!r}"
    view = views.get(stream.content.stream)
    if view is not None:
        report.extend(check_content(stream.content, view, subject))

    if stream.parent_id is None:
        if stream.pipeline:
            report.add(
                "P112", subject, "an original source stream must carry no pipeline"
            )
        return

    parent = deployment.streams.get(stream.parent_id)
    if parent is None:
        report.add(
            "P110",
            subject,
            f"parent stream {stream.parent_id!r} is not installed (orphaned pipeline)",
        )
        return
    if stream.origin_node not in parent.route:
        report.add(
            "P111",
            subject,
            f"taps parent {stream.parent_id!r} at {stream.origin_node}, which is "
            f"not on the parent's route {'-'.join(parent.route)}",
            hint="a stream is only available for sharing at nodes on its route",
        )
    if parent.content.stream != stream.content.stream:
        report.add(
            "P114",
            subject,
            f"original input stream changes along the derivation "
            f"({parent.content.stream!r} → {stream.content.stream!r})",
        )
    elif not match_stream_properties(parent.content, stream.content):
        report.add(
            "P113",
            subject,
            f"content is not derivable from parent {stream.parent_id!r} "
            "(Algorithm 2 rejects the pair)",
            hint="the compensation pipeline cannot create data its input "
            "does not contain",
        )
    if view is not None:
        report.extend(
            check_pipeline(parent.content, stream.pipeline, view, subject)
        )


# ----------------------------------------------------------------------
# P12x — delivery
# ----------------------------------------------------------------------
def _check_deliveries(
    deployment: Deployment, report: AnalysisReport, views: Dict[str, SchemaView]
) -> None:
    for record in deployment.queries.values():
        subject = f"query {record.name!r}"
        for input_stream, stream_id in record.delivered:
            delivered = deployment.streams.get(stream_id)
            if delivered is None:
                report.add(
                    "P120",
                    subject,
                    f"delivered stream {stream_id!r} is not installed",
                )
                continue
            if delivered.target_node != record.subscriber_node:
                report.add(
                    "P121",
                    subject,
                    f"stream {stream_id!r} terminates at {delivered.target_node}, "
                    f"but the subscriber sits at {record.subscriber_node}",
                )
            try:
                needed = record.properties.input_for(input_stream)
            except KeyError:
                report.add(
                    "P123",
                    subject,
                    f"no requirement recorded for input stream {input_stream!r}",
                )
                continue
            # The delivered stream must BE the required content, or at
            # least be able to answer it (widening restores may deliver
            # a superset that the restore pipeline narrows).
            if delivered.content != needed and not match_stream_properties(
                delivered.content, needed
            ):
                report.add(
                    "P122",
                    subject,
                    f"delivered stream {stream_id!r} does not satisfy the "
                    f"subscription's requirement on {input_stream!r}",
                )
            view = views.get(needed.stream)
            if view is not None:
                report.extend(check_content(needed, view, subject))


# ----------------------------------------------------------------------
# P13x — usage ledger (the a_b / a_l bookkeeping)
# ----------------------------------------------------------------------
def _check_usage_ledger(deployment: Deployment, report: AnalysisReport) -> None:
    net = deployment.net
    usage = deployment.usage

    used_links: Set[Tuple[str, str]] = set()
    active_peers: Set[str] = set()
    for stream in deployment.streams.values():
        for a, b in stream.links():
            used_links.add((a, b) if a < b else (b, a))
        active_peers.update(stream.route)
    for record in deployment.queries.values():
        active_peers.add(record.subscriber_node)

    for (a, b), bits in usage._link_bits.items():
        if bits < -_NEGATIVE_EPS:
            report.add(
                "P130",
                f"link {a}-{b}",
                f"negative committed traffic ({bits:.3f} bit/s)",
            )
        elif bits > _DUST_EPS and (a, b) not in used_links:
            report.add(
                "P131",
                f"link {a}-{b}",
                f"ledger commits {bits:.1f} bit/s but no installed stream "
                "routes over this link (stale a_b)",
            )
    for peer, work in usage._peer_work.items():
        if work < -_NEGATIVE_EPS:
            report.add(
                "P130", f"peer {peer}", f"negative committed work ({work:.3f} units/s)"
            )
        elif work > _DUST_EPS and peer not in active_peers:
            report.add(
                "P132",
                f"peer {peer}",
                f"ledger commits {work:.1f} units/s of work but no installed "
                "stream or subscription touches this peer (stale a_l)",
            )

    for stream in deployment.streams.values():
        if stream.parent_id is None:
            continue
        subject = f"stream {stream.stream_id!r}"
        for a, b in stream.links():
            link = net.link(a, b) if net.has_link(a, b) else None
            if link is not None and usage.link_traffic(link) <= _DUST_EPS:
                report.add(
                    "P133",
                    subject,
                    f"stream is routed over {a}-{b} but the ledger shows no "
                    "committed traffic there (stale a_b)",
                    hint="installing a stream must commit its estimated "
                    "effects; see Deployment.commit_effects",
                )
        if stream.pipeline and usage.peer_work(stream.origin_node) <= _DUST_EPS:
            report.add(
                "P134",
                subject,
                f"pipeline runs at {stream.origin_node} but the ledger shows "
                "no committed work there (stale a_l)",
            )
    for record in deployment.queries.values():
        if usage.peer_work(record.subscriber_node) <= _DUST_EPS:
            report.add(
                "P135",
                f"query {record.name!r}",
                f"no work committed at the subscriber's super-peer "
                f"{record.subscriber_node} (missing post-processing load)",
            )
