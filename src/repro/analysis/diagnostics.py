"""Diagnostics shared by both analysis passes.

Every check — plan-verifier invariants and linter rules alike — reports
:class:`Diagnostic` records: a stable rule code, the subject it applies
to (a stream, a query, or a ``file:line:col`` location), a one-line
message, and an optional hint explaining how to fix it.  Diagnostics
aggregate into an :class:`AnalysisReport`, which renders the
human-readable report shown by the CLI and carried by
:class:`InvariantViolation`.

Code ranges
-----------

* ``P1xx`` — deployment/plan structure (routes, derivation, delivery,
  usage ledger);
* ``T2xx`` — operator-chain type checking against stream schemas;
* ``L3xx`` — source-code lint rules;
* ``F4xx`` — dataflow facts (:mod:`repro.analysis.flow`): F400 missing
  statistics, F401 committed estimate outside the derived interval,
  F402 dead stream (warning), F403 missed sharing (warning);
* ``S5xx`` — shard safety (:mod:`repro.analysis.shards`): S501
  unclassifiable operator, S510 order-sensitive consumer blocks a cut,
  S511 multi-input subscription pins its inputs' feed paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass."""

    code: str
    subject: str
    message: str
    hint: str = ""
    severity: str = "error"  # "error" | "warning"

    def __post_init__(self) -> None:
        if self.severity not in ("error", "warning"):
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        text = f"{self.severity}[{self.code}] {self.subject}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def __str__(self) -> str:
        return self.render()


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics with a pass/fail verdict."""

    title: str = "analysis"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        subject: str,
        message: str,
        hint: str = "",
        severity: str = "error",
    ) -> None:
        self.diagnostics.append(Diagnostic(code, subject, message, hint, severity))

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # ------------------------------------------------------------------
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """``True`` when no *error*-severity diagnostics were reported."""
        return not self.errors()

    def __len__(self) -> int:
        return len(self.diagnostics)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full human-readable report."""
        lines = [f"== {self.title} =="]
        if not self.diagnostics:
            lines.append("clean: no violations found")
            return "\n".join(lines)
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        errors, warnings = len(self.errors()), len(self.warnings())
        lines.append(f"{errors} error(s), {warnings} warning(s)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class InvariantViolation(Exception):
    """A deployment failed its static pre-flight verification.

    Raised by :meth:`repro.sharing.system.StreamGlobe` hooks when
    constructed with ``verify=True``; carries the full
    :class:`AnalysisReport` so callers can inspect individual findings.
    """

    def __init__(self, context: str, report: AnalysisReport) -> None:
        self.context = context
        self.report = report
        super().__init__(f"{context}:\n{report.render()}")
