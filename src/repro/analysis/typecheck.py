"""Stage-to-stage type checking of operator chains against stream schemas.

The paper's compensation machinery silently assumes that each operator's
conditions make sense against what the previous stage emits: projection
marks must exist in the input schema, selection predicate paths must
resolve (and address numeric leaves), time-based windows must key on a
monotone reference element such as ``det_time``, and re-aggregation must
consume an aggregate stream with a shareable window.  This module checks
those assumptions statically, without pumping a single item.

The *schema* an operator chain is checked against is a
:class:`SchemaView`: the set of element paths a stream's items expose,
which of them carry numeric values, and which are known to be
non-decreasing.  Views are built either from a declared
:class:`~repro.xmlkit.schema.Schema` (DTD tree) or from the measured
:class:`~repro.costmodel.statistics.StreamStatistics` — the latter is
what :class:`~repro.sharing.system.StreamGlobe` uses, keeping the
verifier and the optimizer consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set

from ..costmodel.statistics import StreamStatistics
from ..matching.aggregation import functions_compatible
from ..properties import (
    RESULT_NODE,
    AggregationSpec,
    OperatorSpec,
    ProjectionSpec,
    ReAggregationSpec,
    RestructureSpec,
    SelectionSpec,
    StreamProperties,
    UdfSpec,
    WindowContentsSpec,
    WindowSpec,
)
from ..xmlkit import Path
from ..xmlkit.schema import Schema
from .diagnostics import Diagnostic

__all__ = ["SchemaView", "check_content", "check_pipeline"]


@dataclass(frozen=True)
class SchemaView:
    """What is statically known about one stream's item structure.

    All paths are absolute (they include the stream/item prefix, e.g.
    ``photons/photon/en``), matching the convention of predicate-graph
    labels and projection marks.  ``monotone`` is ``None`` when the
    source of the view cannot know value ordering (a declared schema);
    a statistics-backed view always knows.
    """

    stream: str
    item_path: Path
    paths: FrozenSet[Path]
    numeric: FrozenSet[Path]
    monotone: Optional[FrozenSet[Path]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_schema(cls, schema: Schema, stream: Optional[str] = None) -> "SchemaView":
        """Build a view from a declared DTD tree (ordering unknown)."""
        item_path = Path(schema.stream_tag) / schema.root.tag
        paths = frozenset(Path(item_path.steps + p.steps) for p in schema.paths())
        numeric = frozenset(
            Path(item_path.steps + p.steps)
            for p in schema.leaf_paths()
            if schema.node_at(p).value_type in ("int", "decimal")
        )
        return cls(
            stream=stream or schema.stream_tag,
            item_path=item_path,
            paths=paths,
            numeric=numeric,
            monotone=None,
        )

    @classmethod
    def from_statistics(cls, stats: "StreamStatistics") -> "SchemaView":
        """Build a view from measured :class:`StreamStatistics`."""
        paths = frozenset(stats.paths)
        numeric = frozenset(
            path for path, entry in stats.paths.items() if entry.minimum is not None
        )
        monotone = frozenset(
            path
            for path, entry in stats.paths.items()
            if getattr(entry, "nondecreasing", None)
        )
        return cls(
            stream=stats.stream,
            item_path=stats.item_path,
            paths=paths,
            numeric=numeric,
            monotone=monotone,
        )


@dataclass
class _ChainState:
    """What flows between two stages of an operator chain."""

    #: Paths still present in the items (projections narrow this).
    available: Set[Path] = field(default_factory=set)
    #: ``True`` once an aggregation replaced items by aggregate values.
    aggregated: bool = False
    #: The aggregation that produced the current aggregate values.
    aggregation: Optional[AggregationSpec] = None


def check_content(
    content: StreamProperties, view: SchemaView, subject: str
) -> List[Diagnostic]:
    """Type-check a stream's full operator chain from the raw schema."""
    diags: List[Diagnostic] = []
    _walk_operators(content.operators, _initial_state(view), view, subject, diags)
    return diags


def check_pipeline(
    parent_content: StreamProperties,
    pipeline: "tuple[OperatorSpec, ...]",
    view: SchemaView,
    subject: str,
) -> List[Diagnostic]:
    """Type-check a compensation ``pipeline`` applied to a parent stream.

    The pipeline's input state is the parent chain's *output* state, so
    stage-to-stage compatibility across the stream derivation is checked
    exactly where the operators actually execute.
    """
    diags: List[Diagnostic] = []
    state = _walk_operators(
        parent_content.operators, _initial_state(view), view, subject, []
    )
    _walk_operators(pipeline, state, view, subject, diags)
    return diags


# ----------------------------------------------------------------------
# The stage walker
# ----------------------------------------------------------------------
def _initial_state(view: SchemaView) -> _ChainState:
    return _ChainState(available=set(view.paths))


def _walk_operators(
    operators: "tuple[OperatorSpec, ...]",
    state: _ChainState,
    view: SchemaView,
    subject: str,
    diags: List[Diagnostic],
) -> _ChainState:
    for index, spec in enumerate(operators):
        stage = f"{subject} stage {index + 1} ({spec.kind})"
        if isinstance(spec, SelectionSpec):
            _check_selection(spec, state, view, stage, diags)
        elif isinstance(spec, ProjectionSpec):
            _check_projection(spec, state, view, stage, diags)
        elif isinstance(spec, AggregationSpec):
            _check_aggregation(spec, state, view, stage, diags)
        elif isinstance(spec, WindowContentsSpec):
            _check_window_contents(spec, state, view, stage, diags)
        elif isinstance(spec, ReAggregationSpec):
            _check_reaggregation(spec, state, view, stage, diags)
        elif isinstance(spec, RestructureSpec):
            diags.append(
                Diagnostic(
                    "T217",
                    stage,
                    "restructuring must not appear in a stream's operator chain",
                    hint="post-processing output is never reused (Section 2); "
                    "it belongs to the subscriber-side plan only",
                )
            )
        elif isinstance(spec, UdfSpec):
            pass  # unknown semantics: conservatively type-neutral
    return state


def _resolve_paths(
    paths: "list[Path]",
    state: _ChainState,
    view: SchemaView,
    stage: str,
    diags: List[Diagnostic],
    code: str,
    what: str,
) -> None:
    for path in paths:
        if path == RESULT_NODE:
            continue
        if path in state.available:
            continue
        if path in view.paths:
            diags.append(
                Diagnostic(
                    code,
                    stage,
                    f"{what} {path} was dropped by an earlier projection",
                    hint="widen the upstream projection marks or reorder the chain",
                )
            )
        else:
            diags.append(
                Diagnostic(
                    code,
                    stage,
                    f"{what} {path} does not exist in the schema of "
                    f"stream {view.stream!r}",
                )
            )


def _check_selection(
    spec: SelectionSpec,
    state: _ChainState,
    view: SchemaView,
    stage: str,
    diags: List[Diagnostic],
) -> None:
    variables = spec.graph.variables()
    if state.aggregated:
        if any(v != RESULT_NODE for v in variables):
            diags.append(
                Diagnostic(
                    "T210",
                    stage,
                    "item-level selection after aggregation",
                    hint="aggregate streams carry values, not items; filter the "
                    "aggregate via the aggregation's result filter instead",
                )
            )
        return
    _resolve_paths(variables, state, view, stage, diags, "T201", "selection path")
    for path in variables:
        if path == RESULT_NODE:
            continue
        if path in view.paths and path not in view.numeric:
            diags.append(
                Diagnostic(
                    "T202",
                    stage,
                    f"selection predicate compares non-numeric element {path}",
                    hint="predicates are linear arithmetic constraints "
                    "(Definition 2.1); only numeric leaves can be compared",
                )
            )


def _check_projection(
    spec: ProjectionSpec,
    state: _ChainState,
    view: SchemaView,
    stage: str,
    diags: List[Diagnostic],
) -> None:
    if state.aggregated:
        diags.append(
            Diagnostic(
                "T211",
                stage,
                "projection after aggregation",
                hint="aggregate values have no element structure left to project",
            )
        )
        return
    outputs = sorted(spec.output_elements)
    _resolve_paths(outputs, state, view, stage, diags, "T203", "projection mark")
    state.available = {
        path
        for path in state.available
        if any(path.starts_with(out) or out.starts_with(path) for out in outputs)
    }


def _check_window(
    window: WindowSpec,
    state: _ChainState,
    view: SchemaView,
    stage: str,
    diags: List[Diagnostic],
) -> None:
    if window.kind != "diff":
        return
    reference = window.reference
    assert reference is not None  # WindowSpec.__post_init__ guarantees it
    _resolve_paths([reference], state, view, stage, diags, "T206", "window reference")
    if reference in view.paths and reference not in view.numeric:
        diags.append(
            Diagnostic(
                "T207",
                stage,
                f"window reference {reference} is not a numeric leaf",
            )
        )
        return
    if (
        view.monotone is not None
        and reference in view.numeric
        and reference not in view.monotone
    ):
        diags.append(
            Diagnostic(
                "T208",
                stage,
                f"time-based window keyed on non-monotone element {reference}",
                hint="the paper requires streams sorted by the reference element "
                "(Section 2); key on a non-decreasing element such as det_time",
            )
        )


def _check_aggregation(
    spec: AggregationSpec,
    state: _ChainState,
    view: SchemaView,
    stage: str,
    diags: List[Diagnostic],
) -> None:
    if state.aggregated:
        diags.append(
            Diagnostic(
                "T212",
                stage,
                "aggregation over an already aggregated stream",
                hint="combining partial aggregates is re-aggregation "
                "(ReAggregationSpec), not a second aggregation",
            )
        )
        return
    _resolve_paths(
        [spec.aggregated_path], state, view, stage, diags, "T204", "aggregated element"
    )
    if spec.aggregated_path in view.paths and spec.aggregated_path not in view.numeric:
        diags.append(
            Diagnostic(
                "T205",
                stage,
                f"aggregated element {spec.aggregated_path} is not numeric",
            )
        )
    _resolve_paths(
        spec.pre_selection.variables(),
        state,
        view,
        stage,
        diags,
        "T201",
        "pre-selection path",
    )
    _check_window(spec.window, state, view, stage, diags)
    for variable in spec.result_filter.variables():
        if variable != RESULT_NODE:
            diags.append(
                Diagnostic(
                    "T209",
                    stage,
                    f"result filter constrains {variable}, not the aggregate value",
                )
            )
    state.aggregated = True
    state.aggregation = spec
    state.available = set()


def _check_window_contents(
    spec: WindowContentsSpec,
    state: _ChainState,
    view: SchemaView,
    stage: str,
    diags: List[Diagnostic],
) -> None:
    if state.aggregated:
        diags.append(
            Diagnostic("T213", stage, "window-contents operator after aggregation")
        )
        return
    _check_window(spec.window, state, view, stage, diags)


def _check_reaggregation(
    spec: ReAggregationSpec,
    state: _ChainState,
    view: SchemaView,
    stage: str,
    diags: List[Diagnostic],
) -> None:
    if not state.aggregated:
        diags.append(
            Diagnostic(
                "T214",
                stage,
                "re-aggregation over a non-aggregate stream",
                hint="re-aggregation combines partial aggregates (Figure 5); "
                "its input must be an aggregation's result stream",
            )
        )
        return
    produced = state.aggregation
    if produced is not None and produced != spec.reused:
        diags.append(
            Diagnostic(
                "T218",
                stage,
                "re-aggregation's reused spec does not match the upstream "
                f"aggregation ({spec.reused} vs {produced})",
            )
        )
    if not functions_compatible(spec.reused.function, spec.new.function):
        diags.append(
            Diagnostic(
                "T215",
                stage,
                f"partial {spec.reused.function} aggregates cannot produce "
                f"{spec.new.function} aggregates",
                hint="only avg streams carry (sum, count) pairs on the wire "
                "(Section 3.3); every other function serves itself alone",
            )
        )
    if not spec.new.window.shareable_from(spec.reused.window):
        diags.append(
            Diagnostic(
                "T216",
                stage,
                f"window {spec.new.window} is not shareable from "
                f"{spec.reused.window}",
                hint="MatchAggregations requires Δ' mod Δ = 0, Δ mod µ = 0 "
                "and µ' mod µ = 0 (Figure 5)",
            )
        )
    state.aggregation = spec.new
