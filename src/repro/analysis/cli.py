"""Command-line entry point for the static analysis gates.

Usage::

    python -m repro.analysis                       # both passes
    python -m repro.analysis --code src/repro      # lint only
    python -m repro.analysis --plan                # verify all scenarios
    python -m repro.analysis --plan --scenario 1 --strategy sharing

``--code`` lints the given files/directories (default ``src/repro``)
with the repro-specific :mod:`~repro.analysis.linter`.  ``--plan``
builds the paper's benchmark scenarios, registers their workload
(without pumping items) and runs the
:func:`~repro.analysis.plan_verifier.verify_deployment` invariants over
the resulting deployments.  ``--churn`` replays the churn scenario's
fault schedule against a registered deployment and verifies the plan
after every repair (``python -m repro.analysis --churn``).  Exit status
is 0 iff every requested pass is free of error-severity diagnostics,
which is what CI keys on.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .diagnostics import AnalysisReport
from .linter import lint_paths
from .plan_verifier import verify_deployment

__all__ = ["main"]

_SCENARIOS = ("1", "2", "grid")
_DEFAULT_CODE_PATHS = (os.path.join("src", "repro"),)


def _plan_reports(
    scenarios: Sequence[str], strategies: Optional[Sequence[str]]
) -> List[AnalysisReport]:
    # Imported lazily: --code must work even if the engine side is broken.
    from ..sharing.strategies import STRATEGIES
    from ..workload.scenarios import scenario_grid, scenario_one, scenario_two
    from .preflight import build_verified_system

    builders = {
        "1": scenario_one,
        "2": scenario_two,
        "grid": lambda: scenario_grid(rows=3, cols=3, query_count=24),
    }
    reports = []
    for key in scenarios:
        scenario = builders[key]()
        for strategy in strategies or list(STRATEGIES):
            title = f"plan verification: scenario {key}, strategy {strategy!r}"
            reports.append(build_verified_system(scenario, strategy, title=title))
    return reports


def _churn_reports(strategies: Optional[Sequence[str]]) -> List[AnalysisReport]:
    from ..sharing.strategies import STRATEGIES
    from ..workload.scenarios import scenario_churn
    from .preflight import build_churned_system

    reports: List[AnalysisReport] = []
    for strategy in strategies or list(STRATEGIES):
        reports.extend(
            build_churned_system(
                scenario_churn(),
                strategy,
                title=f"churn verification, strategy {strategy!r}",
            )
        )
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static plan verifier and repro-specific source linter.",
    )
    parser.add_argument(
        "--code",
        nargs="*",
        metavar="PATH",
        default=None,
        help="lint the given files/directories (default: src/repro)",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="register the benchmark scenarios and verify their deployments",
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="replay the churn scenario's faults and verify every repaired "
        "deployment",
    )
    parser.add_argument(
        "--scenario",
        choices=_SCENARIOS,
        action="append",
        help="restrict --plan to one scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--strategy",
        action="append",
        help="restrict --plan to one sharing strategy (repeatable; default: all)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only failing reports",
    )
    args = parser.parse_args(argv)

    run_code = args.code is not None
    run_plan = args.plan
    run_churn = args.churn
    if not run_code and not run_plan and not run_churn:
        run_code = run_plan = True  # no flags: run the default full gate

    reports: List[AnalysisReport] = []
    if run_code:
        paths = args.code if args.code else list(_DEFAULT_CODE_PATHS)
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            parser.error(f"no such file or directory: {', '.join(missing)}")
        reports.append(lint_paths(paths, title=f"code lint: {', '.join(paths)}"))
    if run_plan:
        from ..sharing.strategies import STRATEGIES

        unknown = [s for s in args.strategy or [] if s not in STRATEGIES]
        if unknown:
            parser.error(
                f"unknown strategy {', '.join(unknown)}; "
                f"pick from {', '.join(STRATEGIES)}"
            )
        reports.extend(_plan_reports(args.scenario or _SCENARIOS, args.strategy))
    if run_churn:
        from ..sharing.strategies import STRATEGIES

        unknown = [s for s in args.strategy or [] if s not in STRATEGIES]
        if unknown:
            parser.error(
                f"unknown strategy {', '.join(unknown)}; "
                f"pick from {', '.join(STRATEGIES)}"
            )
        reports.extend(_churn_reports(args.strategy))

    failed = False
    for report in reports:
        if not report.ok:
            failed = True
        if not report.ok or not args.quiet:
            print(report.render())
            print()
    print("FAIL" if failed else "OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
