"""Command-line entry point for the static analysis gates.

Usage::

    python -m repro.analysis                       # default full gate
    python -m repro.analysis --code src/repro      # lint only
    python -m repro.analysis --plan                # verify all scenarios
    python -m repro.analysis --plan --scenario 1 --strategy stream-sharing
    python -m repro.analysis --flow --shards       # dataflow + sharding
    python -m repro.analysis --shards --scenario grid --shard-plan-out plan.json

Passes
------

* ``--code`` lints the given files/directories (default ``src/repro``)
  with the repro-specific :mod:`~repro.analysis.linter` (L3xx);
* ``--plan`` builds the paper's benchmark scenarios, registers their
  workload (without pumping items) and runs the
  :func:`~repro.analysis.plan_verifier.verify_deployment` invariants
  (P1xx/T2xx) over the resulting deployments;
* ``--flow`` runs the abstract interpreter
  (:func:`~repro.analysis.flow.analyze_flow`, F4xx) over the same
  deployments;
* ``--shards`` runs the shard-safety certifier
  (:func:`~repro.analysis.shards.certify_shards`, S5xx) and prints each
  deployment's :class:`~repro.analysis.shards.ShardPlan` as one
  ``SHARD-PLAN <scenario> <strategy> <json>`` line (optionally also
  written to ``--shard-plan-out``);
* ``--churn`` replays the churn scenario's fault schedule against a
  registered deployment and re-runs plan/flow/shards after every
  repair, re-validating shard certificates against the bumped
  topology version.

Exit-code contract
------------------

Every pass follows the same contract, which is what CI keys on:

* ``0`` — every requested pass ran and produced no *error*-severity
  diagnostics (warnings do not fail the gate);
* ``1`` — at least one pass reported an error diagnostic.  This
  includes operational findings reported *as* diagnostics: a ``--code``
  path that does not exist (``L307``) or contains no Python files
  (``L308``) produces an error report rather than silently linting
  nothing;
* ``2`` — usage errors detected before any pass runs (unknown flags,
  unknown ``--scenario``/``--strategy`` values), via ``argparse``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .diagnostics import AnalysisReport
from .linter import lint_paths

if TYPE_CHECKING:  # pragma: no cover - engine-side import kept lazy
    from typing import Callable, Dict

    from ..workload.scenarios import Scenario
    from .shards import ShardPlan

__all__ = ["main"]

_SCENARIOS = ("1", "2", "grid")
_DEFAULT_CODE_PATHS = (os.path.join("src", "repro"),)


def _scenario_builders() -> "Dict[str, Callable[[], Scenario]]":
    from ..workload.scenarios import scenario_grid, scenario_one, scenario_two

    return {
        "1": scenario_one,
        "2": scenario_two,
        "grid": lambda: scenario_grid(rows=3, cols=3, query_count=24),
    }


def _code_report(paths: Sequence[str]) -> AnalysisReport:
    """Lint ``paths``; missing or Python-free paths become diagnostics.

    A nonexistent path is an error the report carries (``L307``), not a
    silent no-op: the gate must fail loudly when pointed at nothing.
    """
    title = f"code lint: {', '.join(paths)}"
    report = AnalysisReport(title=title)
    present: List[str] = []
    for path in paths:
        if os.path.exists(path):
            present.append(path)
        else:
            report.add(
                "L307",
                path,
                "no such file or directory; nothing was linted for this path",
                hint="check the --code arguments",
            )
    if present:
        linted = lint_paths(present, title=title)
        report.merge(linted)
        if not linted.diagnostics and not _has_python_files(present):
            report.add(
                "L308",
                ", ".join(present),
                "path(s) exist but contain no Python files; nothing was "
                "linted",
                hint="point --code at a Python source tree",
            )
    return report


def _has_python_files(paths: Sequence[str]) -> bool:
    for path in paths:
        if os.path.isfile(path) and path.endswith(".py"):
            return True
        for _root, _dirs, files in os.walk(path):
            if any(name.endswith(".py") for name in files):
                return True
    return False


def _plan_reports(
    scenarios: Sequence[str], strategies: Optional[Sequence[str]]
) -> List[AnalysisReport]:
    # Imported lazily: --code must work even if the engine side is broken.
    from ..sharing.strategies import STRATEGIES
    from .preflight import build_verified_system

    builders = _scenario_builders()
    reports = []
    for key in scenarios:
        scenario = builders[key]()
        for strategy in strategies or list(STRATEGIES):
            title = f"plan verification: scenario {key}, strategy {strategy!r}"
            reports.append(build_verified_system(scenario, strategy, title=title))
    return reports


def _flow_reports(
    scenarios: Sequence[str], strategies: Optional[Sequence[str]]
) -> List[AnalysisReport]:
    from ..sharing.strategies import STRATEGIES
    from .preflight import build_flow_report

    builders = _scenario_builders()
    reports = []
    for key in scenarios:
        scenario = builders[key]()
        for strategy in strategies or list(STRATEGIES):
            title = f"flow analysis: scenario {key}, strategy {strategy!r}"
            reports.append(build_flow_report(scenario, strategy, title=title))
    return reports


def _shard_reports(
    scenarios: Sequence[str], strategies: Optional[Sequence[str]]
) -> Tuple[List[AnalysisReport], List[Tuple[str, str, "ShardPlan"]]]:
    from ..sharing.strategies import STRATEGIES
    from .preflight import build_shard_plan

    builders = _scenario_builders()
    reports: List[AnalysisReport] = []
    plans: List[Tuple[str, str, "ShardPlan"]] = []
    for key in scenarios:
        scenario = builders[key]()
        for strategy in strategies or list(STRATEGIES):
            title = f"shard certification: scenario {key}, strategy {strategy!r}"
            plan, report = build_shard_plan(scenario, strategy, title=title)
            reports.append(report)
            plans.append((key, strategy, plan))
    return reports, plans


def _churn_reports(
    strategies: Optional[Sequence[str]], passes: Tuple[str, ...]
) -> List[AnalysisReport]:
    from ..sharing.strategies import STRATEGIES
    from ..workload.scenarios import scenario_churn
    from .preflight import build_churned_system

    reports: List[AnalysisReport] = []
    for strategy in strategies or list(STRATEGIES):
        reports.extend(
            build_churned_system(
                scenario_churn(),
                strategy,
                title=f"churn verification, strategy {strategy!r}",
                passes=passes,
            )
        )
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis gates: source lint, plan verifier, "
        "flow analyzer, shard certifier.",
    )
    parser.add_argument(
        "--code",
        nargs="*",
        metavar="PATH",
        default=None,
        help="lint the given files/directories (default: src/repro)",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="register the benchmark scenarios and verify their deployments",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="run the F4xx abstract interpreter over the scenario deployments",
    )
    parser.add_argument(
        "--shards",
        action="store_true",
        help="certify shard partitions (S5xx) and print each ShardPlan as "
        "a 'SHARD-PLAN <scenario> <strategy> <json>' line",
    )
    parser.add_argument(
        "--shard-plan-out",
        metavar="PATH",
        default=None,
        help="also write the last certified ShardPlan JSON to PATH",
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="replay the churn scenario's faults and re-run the plan, flow "
        "and shards passes after every repair",
    )
    parser.add_argument(
        "--scenario",
        choices=_SCENARIOS,
        action="append",
        help="restrict plan/flow/shards to one scenario (repeatable; "
        "default: all)",
    )
    parser.add_argument(
        "--strategy",
        action="append",
        help="restrict to one sharing strategy (repeatable; default: all)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only failing reports",
    )
    args = parser.parse_args(argv)

    run_code = args.code is not None
    run_plan = args.plan
    run_flow = args.flow
    run_shards = args.shards
    run_churn = args.churn
    if not any((run_code, run_plan, run_flow, run_shards, run_churn)):
        run_code = run_plan = True  # no flags: run the default full gate

    if args.strategy and (run_plan or run_flow or run_shards or run_churn):
        from ..sharing.strategies import STRATEGIES

        unknown = [s for s in args.strategy if s not in STRATEGIES]
        if unknown:
            parser.error(
                f"unknown strategy {', '.join(unknown)}; "
                f"pick from {', '.join(STRATEGIES)}"
            )

    scenarios = args.scenario or _SCENARIOS
    reports: List[AnalysisReport] = []
    if run_code:
        paths = args.code if args.code else list(_DEFAULT_CODE_PATHS)
        reports.append(_code_report(paths))
    if run_plan:
        reports.extend(_plan_reports(scenarios, args.strategy))
    if run_flow:
        reports.extend(_flow_reports(scenarios, args.strategy))
    if run_shards:
        shard_reports, plans = _shard_reports(scenarios, args.strategy)
        reports.extend(shard_reports)
        for key, strategy, plan in plans:
            print(f"SHARD-PLAN {key} {strategy} {plan.to_json()}")
        if args.shard_plan_out and plans:
            with open(args.shard_plan_out, "w", encoding="utf-8") as handle:
                handle.write(plans[-1][2].to_json() + "\n")
    if run_churn:
        churn_passes: Tuple[str, ...] = ("plan", "flow", "shards")
        reports.extend(_churn_reports(args.strategy, churn_passes))

    failed = False
    for report in reports:
        if not report.ok:
            failed = True
        if not report.ok or not args.quiet:
            print(report.render())
            print()
    print("FAIL" if failed else "OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
