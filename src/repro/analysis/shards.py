"""Shard-safety certifier over a deployed stream network (shards pass).

The ROADMAP's parallel data plane needs to know *statically* which
partitions of the super-peer graph can execute independently without
changing results relative to the sequential
:class:`~repro.engine.executor.StreamSimulator`.  This pass computes a
certified partition — a :class:`ShardPlan` — and explains, per edge,
what blocks a finer cut.

Operator effect lattice
-----------------------

Every operator spec is classified into a three-point lattice (see
:func:`operator_effect`)::

    STATELESS  <  KEYED_STATE  <  ORDER_SENSITIVE

* **stateless** — per-item pure functions: selections, projections,
  the subscriber-side restructuring step;
* **keyed-state** — operators with per-stream state whose result is a
  deterministic function of the input *sequence*: count windows, and
  time-based windows whose reference element is certified nondecreasing
  by the statistics catalog (aggregation, window-contents,
  re-aggregation);
* **order-sensitive** — operators whose result can depend on more than
  the per-stream item sequence: UDFs (unknown semantics) and time-based
  windows whose reference ordering is *not* certified (their reorder
  buffering depends on batch segmentation).

Happens-before model
--------------------

The sequential executor advances all streams between *epoch barriers*
(fault times, gate openings, metric samples).  A sharded executor keeps
that contract per shard and exchanges cross-shard traffic only at the
barriers: items a producer shard emits during epoch *k* are visible to
the consumer shard at epoch *k + 1*.  This exchange preserves
**per-stream FIFO order** — so stateless and keyed-state consumers are
deterministic across a cut — but it changes *batch segmentation* and
*inter-stream interleaving*, which is exactly what the two blocking
rules protect:

* ``S510`` — an edge feeds an order-sensitive pipeline downstream.
  Re-segmenting the feed could change the consumer's result, so every
  edge on the path from the original source to that pipeline must stay
  inside one shard.
* ``S511`` — an edge carries an input of a *multi-input* subscription.
  The combiner pairs the r-th items of all inputs; inputs crossing
  different numbers of cuts would arrive with different epoch lags, so
  all delivered inputs (and their lineages, keeping lag uniformly zero)
  must live in the subscriber's shard.

``S501`` (error) flags an operator spec the certifier cannot classify;
the plan is then reported uncertified.

The resulting partition is the *finest* certified one: merging certified
shards never violates the rules, so a parallel executor is free to
coarsen it (e.g. to match a worker count).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..costmodel import StatisticsCatalog
from ..obs import NULL_RECORDER
from ..properties import (
    AggregationSpec,
    OperatorSpec,
    ReAggregationSpec,
    WindowContentsSpec,
    WindowSpec,
)
from ..sharing.plan import Deployment, InstalledStream
from .diagnostics import AnalysisReport

__all__ = [
    "BlockedEdge",
    "CutEdge",
    "KEYED_STATE",
    "ORDER_SENSITIVE",
    "RuntimePartition",
    "STATELESS",
    "Shard",
    "ShardPlan",
    "certify_shards",
    "operator_effect",
    "partition_for_workers",
    "shard_weights",
    "stream_effect",
]

#: The three points of the effect lattice, in increasing order.
STATELESS = "stateless"
KEYED_STATE = "keyed-state"
ORDER_SENSITIVE = "order-sensitive"

_EFFECT_RANK = {STATELESS: 0, KEYED_STATE: 1, ORDER_SENSITIVE: 2}


def _max_effect(first: str, second: str) -> str:
    return first if _EFFECT_RANK[first] >= _EFFECT_RANK[second] else second


# ----------------------------------------------------------------------
# Effect classification
# ----------------------------------------------------------------------
def operator_effect(
    spec: OperatorSpec, catalog: Optional[StatisticsCatalog], stream: str
) -> Optional[str]:
    """Classify one operator spec; ``None`` when the kind is unknown.

    ``stream`` names the original input stream — the statistics catalog
    entry consulted to certify a time-based window's reference element
    as nondecreasing.
    """
    if spec.kind in ("selection", "projection", "restructure"):
        return STATELESS
    if spec.kind == "aggregation":
        assert isinstance(spec, AggregationSpec)
        return _window_effect(spec.window, catalog, stream)
    if spec.kind == "window":
        assert isinstance(spec, WindowContentsSpec)
        return _window_effect(spec.window, catalog, stream)
    if spec.kind == "reaggregation":
        assert isinstance(spec, ReAggregationSpec)
        return _window_effect(spec.new.window, catalog, stream)
    if spec.kind == "udf":
        return ORDER_SENSITIVE
    return None


def _window_effect(
    window: WindowSpec, catalog: Optional[StatisticsCatalog], stream: str
) -> str:
    if window.kind == "count":
        return KEYED_STATE
    assert window.reference is not None
    if catalog is not None and stream in catalog:
        certified = catalog.for_stream(stream).is_nondecreasing(window.reference)
        if certified:
            return KEYED_STATE
    return ORDER_SENSITIVE


def stream_effect(
    stream: InstalledStream,
    catalog: Optional[StatisticsCatalog],
    report: AnalysisReport,
) -> str:
    """The join of a stream's compensation-pipeline effects.

    Unknown operator kinds are reported as ``S501`` and treated as
    order-sensitive (the conservative top element).
    """
    effect = STATELESS
    for spec in stream.pipeline:
        classified = operator_effect(spec, catalog, stream.content.stream)
        if classified is None:
            report.add(
                "S501",
                f"stream {stream.stream_id}",
                f"operator {spec} has unknown kind {spec.kind!r}; the "
                "certifier cannot classify its effect",
                hint="extend repro.analysis.shards.operator_effect for the "
                "new operator kind",
            )
            classified = ORDER_SENSITIVE
        effect = _max_effect(effect, classified)
    return effect


# ----------------------------------------------------------------------
# The ShardPlan artifact
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One certified partition cell of the super-peer graph."""

    shard_id: int
    nodes: Tuple[str, ...]
    streams: Tuple[str, ...]
    queries: Tuple[str, ...]


@dataclass(frozen=True)
class CutEdge:
    """A network link crossing two shards, with its traffic class."""

    link: Tuple[str, str]
    from_shard: int
    to_shard: int
    streams: Tuple[str, ...]
    effect: str


@dataclass(frozen=True)
class BlockedEdge:
    """A link the partition was not allowed to cut, and why."""

    link: Tuple[str, str]
    code: str
    streams: Tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class ShardPlan:
    """The machine-readable certificate: the parallel executor's input.

    ``network_version`` pins the certificate to one topology state —
    any :attr:`repro.network.topology.Network.version` bump (crash,
    rejoin, link failure/restore) invalidates it and requires
    re-certification.
    """

    network_version: int
    shards: Tuple[Shard, ...]
    cut_edges: Tuple[CutEdge, ...]
    blocked_edges: Tuple[BlockedEdge, ...]
    epoch_lag: Tuple[Tuple[str, int], ...]
    certified: bool

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, node: str) -> Optional[int]:
        for shard in self.shards:
            if node in shard.nodes:
                return shard.shard_id
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "network_version": self.network_version,
            "certified": self.certified,
            "shards": [
                {
                    "id": shard.shard_id,
                    "nodes": list(shard.nodes),
                    "streams": list(shard.streams),
                    "queries": list(shard.queries),
                }
                for shard in self.shards
            ],
            "cut_edges": [
                {
                    "link": list(edge.link),
                    "from_shard": edge.from_shard,
                    "to_shard": edge.to_shard,
                    "streams": list(edge.streams),
                    "effect": edge.effect,
                }
                for edge in self.cut_edges
            ],
            "blocked_edges": [
                {
                    "link": list(edge.link),
                    "code": edge.code,
                    "streams": list(edge.streams),
                    "reason": edge.reason,
                }
                for edge in self.blocked_edges
            ],
            "epoch_lag": {query: lag for query, lag in self.epoch_lag},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardPlan":
        """Inverse of :meth:`to_dict` (``from_dict(to_dict(p)) == p``)."""
        if data.get("version") != 1:
            raise ValueError(f"unsupported ShardPlan version {data.get('version')!r}")
        shards = tuple(
            Shard(
                shard_id=entry["id"],
                nodes=tuple(entry["nodes"]),
                streams=tuple(entry["streams"]),
                queries=tuple(entry["queries"]),
            )
            for entry in data["shards"]
        )
        cut_edges = tuple(
            CutEdge(
                link=(entry["link"][0], entry["link"][1]),
                from_shard=entry["from_shard"],
                to_shard=entry["to_shard"],
                streams=tuple(entry["streams"]),
                effect=entry["effect"],
            )
            for entry in data["cut_edges"]
        )
        blocked_edges = tuple(
            BlockedEdge(
                link=(entry["link"][0], entry["link"][1]),
                code=entry["code"],
                streams=tuple(entry["streams"]),
                reason=entry["reason"],
            )
            for entry in data["blocked_edges"]
        )
        # ``to_dict`` stores lags as a mapping; the plan builds the tuple
        # over sorted query names, so sorted items reproduce it exactly.
        epoch_lag = tuple(sorted(data["epoch_lag"].items()))
        return cls(
            network_version=data["network_version"],
            shards=shards,
            cut_edges=cut_edges,
            blocked_edges=blocked_edges,
            epoch_lag=epoch_lag,
            certified=data["certified"],
        )

    @classmethod
    def from_json(cls, text: str) -> "ShardPlan":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Plan → runtime partition adapter
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimePartition:
    """A certified :class:`ShardPlan` coarsened to a worker count.

    Coarsening certified shards is always safe (merging never violates
    S510/S511), so the adapter is free to pack the finest certified
    shards into ``cells`` — one cell per executor worker.  ``cells[i]``
    lists the shard ids worker ``i`` runs; ``node_cell`` maps every
    super-peer to its worker.
    """

    plan: ShardPlan
    cells: Tuple[Tuple[int, ...], ...]
    node_cell: Tuple[Tuple[str, int], ...]

    @property
    def cell_count(self) -> int:
        return len(self.cells)

    def as_mapping(self) -> Dict[str, int]:
        return dict(self.node_cell)

    def query_lags(self, deployment: Deployment) -> Dict[str, int]:
        """Per-query delivery lag (in epochs) at *cell* granularity.

        Coarsening can only remove crossings, so every lag is bounded by
        the certified plan's ``epoch_lag`` for the same query.
        """
        cell_of = self.as_mapping()
        streams = deployment.streams
        lags: Dict[str, int] = {}
        for query_name in sorted(deployment.queries):
            record = deployment.queries[query_name]
            worst = 0
            for _, delivered_id in sorted(record.delivered):
                delivered = streams.get(delivered_id)
                if delivered is None:
                    continue
                path = _lineage_edges(streams, delivered) + _route_edges(delivered)
                crossings = sum(
                    1
                    for a, b, _carrier in path
                    if cell_of.get(a) is not None
                    and cell_of.get(b) is not None
                    and cell_of[a] != cell_of[b]
                )
                worst = max(worst, crossings)
            lags[query_name] = worst
        return lags


def shard_weights(plan: ShardPlan, deployment: Deployment) -> Dict[int, int]:
    """Deterministic load estimate per shard: one unit per stream plus
    one per pipeline stage plus one per subscription — a proxy for the
    pump work a worker running that shard will do."""
    weights: Dict[int, int] = {}
    streams = deployment.streams
    for shard in plan.shards:
        weight = 0
        for stream_id in shard.streams:
            stream = streams.get(stream_id)
            if stream is None:
                continue
            weight += 1 + len(stream.pipeline)
        weight += len(shard.queries)
        weights[shard.shard_id] = weight
    return weights


def partition_for_workers(
    plan: ShardPlan, deployment: Deployment, workers: int
) -> RuntimePartition:
    """Pack the certified shards into at most ``workers`` cells.

    Greedy LPT: shards in decreasing weight order (ties by shard id) go
    to the currently lightest cell (ties by lowest cell index) — fully
    deterministic, so every run of the parallel executor partitions the
    same way.  Requires ``plan.certified``; coarsening a certified plan
    is always safe, refining is not.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not plan.certified:
        raise ValueError("cannot partition from an uncertified ShardPlan")
    weights = shard_weights(plan, deployment)
    cell_total = min(workers, len(plan.shards)) or 1
    loads = [0] * cell_total
    members: List[List[int]] = [[] for _ in range(cell_total)]
    ordered = sorted(
        plan.shards, key=lambda shard: (-weights[shard.shard_id], shard.shard_id)
    )
    for shard in ordered:
        target = min(range(cell_total), key=lambda index: (loads[index], index))
        loads[target] += weights[shard.shard_id]
        members[target].append(shard.shard_id)
    # Renumber cells by their smallest shard id so the cell order is
    # independent of the packing history.
    occupied = sorted(
        (cell for cell in members if cell), key=lambda cell: min(cell)
    )
    cells = tuple(tuple(sorted(cell)) for cell in occupied)
    shard_cell = {
        shard_id: index for index, cell in enumerate(cells) for shard_id in cell
    }
    node_cell = tuple(
        (node, shard_cell[shard.shard_id])
        for shard in plan.shards
        for node in shard.nodes
    )
    return RuntimePartition(plan=plan, cells=cells, node_cell=node_cell)


# ----------------------------------------------------------------------
# Lineage geometry
# ----------------------------------------------------------------------
def _lineage_edges(
    streams: Dict[str, InstalledStream], stream: InstalledStream
) -> List[Tuple[str, str, str]]:
    """Edges on the source → ``stream.origin_node`` feed path.

    Returns ``(from, to, carrying_stream_id)`` triples: for each
    ancestor, the segment of its route from its origin up to the node
    where the next descendant taps it.
    """
    edges: List[Tuple[str, str, str]] = []
    tap = stream.origin_node
    cursor = streams.get(stream.parent_id) if stream.parent_id else None
    while cursor is not None:
        route = cursor.route
        # The tap must sit on the ancestor's route (a P1xx invariant);
        # fall back to the full route if a malformed plan violates it.
        end = route.index(tap) if tap in route else len(route) - 1
        for a, b in zip(route[:end], route[1 : end + 1]):
            edges.append((a, b, cursor.stream_id))
        tap = cursor.origin_node
        cursor = streams.get(cursor.parent_id) if cursor.parent_id else None
    return edges


def _route_edges(stream: InstalledStream) -> List[Tuple[str, str, str]]:
    return [(a, b, stream.stream_id) for a, b in stream.links()]


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------
def certify_shards(
    deployment: Deployment,
    catalog: Optional[StatisticsCatalog] = None,
    title: str = "shard certification",
    recorder: object = None,
) -> Tuple[ShardPlan, AnalysisReport]:
    """Certify a partition of the super-peer graph; report S5xx."""
    rec = recorder if recorder is not None else NULL_RECORDER
    with rec.span(  # type: ignore[attr-defined]
        "analysis.shards", streams=len(deployment.streams)
    ) as span:
        plan, report = _certify_shards(deployment, catalog, title)
        if getattr(rec, "enabled", False):
            span.set(shards=plan.shard_count, certified=plan.certified)
        return plan, report


def _certify_shards(
    deployment: Deployment, catalog: Optional[StatisticsCatalog], title: str
) -> Tuple[ShardPlan, AnalysisReport]:
    report = AnalysisReport(title=title)
    net = deployment.net
    streams = deployment.streams

    # Union-find over the live super-peers.
    parent: Dict[str, str] = {name: name for name in sorted(net.super_peer_names())}

    def find(node: str) -> str:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(a: str, b: str) -> None:
        if a not in parent or b not in parent:
            return  # a removed peer on a not-yet-repaired route
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            # Deterministic representative: the smaller name wins.
            low, high = sorted((root_a, root_b))
            parent[high] = low

    # Effect of every stream's own pipeline, plus S501 reporting.
    effects: Dict[str, str] = {}
    for stream_id in sorted(streams):
        effects[stream_id] = stream_effect(streams[stream_id], catalog, report)

    blocked: Dict[Tuple[str, str], BlockedEdge] = {}
    edge_effect: Dict[Tuple[str, str], str] = {}

    def note_effect(a: str, b: str, effect: str) -> None:
        key = _canonical(a, b)
        edge_effect[key] = _max_effect(edge_effect.get(key, STATELESS), effect)

    def block(a: str, b: str, code: str, stream_id: str, reason: str) -> None:
        union(a, b)
        key = _canonical(a, b)
        existing = blocked.get(key)
        if existing is None:
            blocked[key] = BlockedEdge(key, code, (stream_id,), reason)
        elif stream_id not in existing.streams:
            blocked[key] = BlockedEdge(
                key,
                existing.code,
                tuple(sorted(existing.streams + (stream_id,))),
                existing.reason,
            )

    # S510 — order-sensitive pipelines pin their whole feed path.
    for stream_id in sorted(streams):
        stream = streams[stream_id]
        feed = _lineage_edges(streams, stream)
        for a, b, carrier in feed:
            note_effect(a, b, effects[stream_id])
        if effects[stream_id] != ORDER_SENSITIVE:
            continue
        for a, b, carrier in feed:
            reason = (
                f"feeds the order-sensitive pipeline of stream {stream_id} "
                f"at {stream.origin_node}; re-segmenting the feed across an "
                "epoch cut could change its result"
            )
            block(a, b, "S510", carrier, reason)
            report.add(
                "S510",
                f"link {a}–{b}",
                f"carries stream {carrier}, {reason}",
                hint="the edge is kept intra-shard; certify the window "
                "reference as nondecreasing (or replace the UDF) to "
                "unlock the cut",
                severity="warning",
            )

    # S511 — multi-input subscriptions need uniformly zero epoch lag.
    for query_name in sorted(deployment.queries):
        record = deployment.queries[query_name]
        if len(record.delivered) <= 1:
            continue
        for _, delivered_id in sorted(record.delivered):
            delivered = streams.get(delivered_id)
            if delivered is None:
                continue
            path = _lineage_edges(streams, delivered) + _route_edges(delivered)
            union_nodes = {record.subscriber_node, delivered.origin_node}
            union_nodes.update(delivered.route)
            for a, b, carrier in path:
                union_nodes.update((a, b))
                reason = (
                    f"carries input {delivered_id} of multi-input "
                    f"subscription {query_name!r}; the combiner pairs items "
                    "across inputs, so all inputs must reach "
                    f"{record.subscriber_node} with equal (zero) epoch lag"
                )
                block(a, b, "S511", carrier, reason)
                report.add(
                    "S511",
                    f"link {a}–{b}",
                    f"carries stream {carrier}, {reason}",
                    hint="the input's whole feed path is kept in the "
                    "subscriber's shard",
                    severity="warning",
                )
            ordered = sorted(node for node in union_nodes if node in parent)
            for node in ordered[1:]:
                union(ordered[0], node)

    # Deliveries of single-input queries: stateless traffic on the
    # delivered routes (counts toward the cut-edge traffic class).
    for query_name in sorted(deployment.queries):
        record = deployment.queries[query_name]
        for _, delivered_id in sorted(record.delivered):
            delivered = streams.get(delivered_id)
            if delivered is None:
                continue
            for a, b, _carrier in _route_edges(delivered):
                note_effect(a, b, STATELESS)

    # Assemble the partition.
    components: Dict[str, List[str]] = {}
    for node in parent:
        components.setdefault(find(node), []).append(node)
    ordered_roots = sorted(components, key=lambda root: min(components[root]))
    shard_of: Dict[str, int] = {}
    for shard_id, root in enumerate(ordered_roots):
        for node in components[root]:
            shard_of[node] = shard_id

    shard_streams: Dict[int, List[str]] = {i: [] for i in range(len(ordered_roots))}
    for stream_id in sorted(streams):
        home = shard_of.get(streams[stream_id].origin_node)
        if home is not None:
            shard_streams[home].append(stream_id)
    shard_queries: Dict[int, List[str]] = {i: [] for i in range(len(ordered_roots))}
    for query_name in sorted(deployment.queries):
        home = shard_of.get(deployment.queries[query_name].subscriber_node)
        if home is not None:
            shard_queries[home].append(query_name)

    shards = tuple(
        Shard(
            shard_id=shard_id,
            nodes=tuple(sorted(components[root])),
            streams=tuple(shard_streams[shard_id]),
            queries=tuple(shard_queries[shard_id]),
        )
        for shard_id, root in enumerate(ordered_roots)
    )

    # Classify the cut edges (live links whose endpoints differ).
    stream_edges: Dict[Tuple[str, str], List[str]] = {}
    for stream_id in sorted(streams):
        for a, b, _carrier in _route_edges(streams[stream_id]):
            stream_edges.setdefault(_canonical(a, b), []).append(stream_id)
    cut_edges: List[CutEdge] = []
    for link in sorted(net.links(), key=lambda item: item.ends):
        a, b = link.ends
        if a not in shard_of or b not in shard_of:
            continue
        if shard_of[a] == shard_of[b]:
            continue
        key = _canonical(a, b)
        cut_edges.append(
            CutEdge(
                link=key,
                from_shard=shard_of[a],
                to_shard=shard_of[b],
                streams=tuple(sorted(set(stream_edges.get(key, [])))),
                effect=edge_effect.get(key, STATELESS),
            )
        )

    # Per-query epoch lag: cut crossings on the slowest input path.
    lags: List[Tuple[str, int]] = []
    for query_name in sorted(deployment.queries):
        record = deployment.queries[query_name]
        worst = 0
        for _, delivered_id in sorted(record.delivered):
            delivered = streams.get(delivered_id)
            if delivered is None:
                continue
            path = _lineage_edges(streams, delivered) + _route_edges(delivered)
            crossings = sum(
                1
                for a, b, _carrier in path
                if shard_of.get(a) is not None
                and shard_of.get(b) is not None
                and shard_of[a] != shard_of[b]
            )
            worst = max(worst, crossings)
        lags.append((query_name, worst))

    plan = ShardPlan(
        network_version=net.version,
        shards=shards,
        cut_edges=tuple(cut_edges),
        blocked_edges=tuple(blocked[key] for key in sorted(blocked)),
        epoch_lag=tuple(lags),
        certified=report.ok,
    )
    return plan, report


def _canonical(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)
