"""Static analysis gates for the stream-sharing engine.

Two independent passes share one diagnostics vocabulary:

* the **plan verifier** (:func:`verify_deployment`) checks a deployed
  stream network against the invariants the registration algorithms
  rely on — route shape, derivation validity, delivery, usage-ledger
  consistency, and operator-chain typing;
* the **linter** (:func:`lint_paths`) is a small ``ast``-based pass for
  the repro-specific source rules generic linters miss.

Both are wired into ``python -m repro.analysis`` (CI gate) and, via
``StreamGlobe(verify=True)``, into a pre-flight hook that raises
:class:`InvariantViolation` on any error.
"""

from .diagnostics import AnalysisReport, Diagnostic, InvariantViolation
from .linter import lint_paths, lint_source
from .plan_verifier import verify_deployment
from .preflight import build_churned_system, build_verified_system, verify_system
from .typecheck import SchemaView, check_content, check_pipeline

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "InvariantViolation",
    "SchemaView",
    "build_churned_system",
    "build_verified_system",
    "check_content",
    "check_pipeline",
    "lint_paths",
    "lint_source",
    "verify_deployment",
    "verify_system",
]
