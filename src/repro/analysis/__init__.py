"""Static analysis gates for the stream-sharing engine.

Four independent passes share one diagnostics vocabulary:

* the **plan verifier** (:func:`verify_deployment`, P1xx/T2xx) checks a
  deployed stream network against the invariants the registration
  algorithms rely on — route shape, derivation validity, delivery,
  usage-ledger consistency, and operator-chain typing;
* the **linter** (:func:`lint_paths`, L3xx) is a small ``ast``-based
  pass for the repro-specific source rules generic linters miss;
* the **flow analyzer** (:func:`analyze_flow`, F4xx) abstractly
  interprets the deployed plans, propagating interval-valued
  rate/size facts from the sources through every operator chain and
  cross-checking the cost model's committed numbers, stream liveness,
  and missed sharing opportunities;
* the **shard certifier** (:func:`certify_shards`, S5xx) classifies
  operators on an effect lattice and computes a certified
  :class:`ShardPlan` — the partition of the super-peer graph the future
  parallel executor may run concurrently.

All four are wired into ``python -m repro.analysis`` (CI gate) and, via
``StreamGlobe(verify=True)``, into a pre-flight hook that raises
:class:`InvariantViolation` on any error.
"""

from .diagnostics import AnalysisReport, Diagnostic, InvariantViolation
from .flow import FlowFacts, Interval, analyze_flow, derive_stream_facts
from .linter import lint_paths, lint_source
from .plan_verifier import verify_deployment
from .preflight import (
    build_churned_system,
    build_flow_report,
    build_shard_plan,
    build_verified_system,
    certify_system,
    flow_system,
    verify_system,
)
from .shards import (
    KEYED_STATE,
    ORDER_SENSITIVE,
    STATELESS,
    BlockedEdge,
    CutEdge,
    RuntimePartition,
    Shard,
    ShardPlan,
    certify_shards,
    operator_effect,
    partition_for_workers,
    stream_effect,
)
from .typecheck import SchemaView, check_content, check_pipeline

__all__ = [
    "AnalysisReport",
    "BlockedEdge",
    "CutEdge",
    "Diagnostic",
    "FlowFacts",
    "Interval",
    "InvariantViolation",
    "KEYED_STATE",
    "ORDER_SENSITIVE",
    "RuntimePartition",
    "STATELESS",
    "SchemaView",
    "Shard",
    "ShardPlan",
    "analyze_flow",
    "build_churned_system",
    "build_flow_report",
    "build_shard_plan",
    "build_verified_system",
    "certify_shards",
    "certify_system",
    "check_content",
    "check_pipeline",
    "derive_stream_facts",
    "flow_system",
    "lint_paths",
    "lint_source",
    "operator_effect",
    "partition_for_workers",
    "stream_effect",
    "verify_deployment",
    "verify_system",
]
