"""Glue between the verifier and a live :class:`StreamGlobe` instance.

Two entry points:

* :func:`verify_system` — verify an existing system's deployment against
  its own statistics catalog (this is what the ``verify=True`` pre-flight
  hook and the benchmark fixtures call);
* :func:`build_verified_system` — build a scenario's system, register
  its full workload *without executing it*, and return the verification
  report (this is what ``python -m repro.analysis --plan`` runs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .diagnostics import AnalysisReport
from .plan_verifier import verify_deployment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sharing.system import StreamGlobe
    from ..workload.scenarios import Scenario

__all__ = ["verify_system", "build_verified_system", "build_churned_system"]


def verify_system(
    system: "StreamGlobe", title: str = "deployment verification"
) -> AnalysisReport:
    """Verify a system's current deployment against its own catalog."""
    return verify_deployment(system.deployment, catalog=system.catalog, title=title)


def build_verified_system(
    scenario: "Scenario", strategy: str, title: str = "plan verification"
) -> AnalysisReport:
    """Register ``scenario`` under ``strategy`` and verify the deployment."""
    from ..sharing.system import StreamGlobe

    system = StreamGlobe(scenario.build_network(), strategy=strategy)
    for source in scenario.sources:
        system.register_stream(
            source.name,
            "photons/photon",
            source.generator_factory(),
            frequency=source.frequency,
            source_peer=source.source_peer,
        )
    for spec in scenario.queries:
        system.register_query(spec.name, spec.text, spec.subscriber_peer)
    return verify_system(system, title=title)


def build_churned_system(
    scenario: "Scenario", strategy: str, title: str = "churn verification"
) -> "list[AnalysisReport]":
    """Register ``scenario``, replay its fault schedule, verify each repair.

    Applies every scheduled fault to the registered (unexecuted)
    deployment through :meth:`StreamGlobe.apply_fault` and verifies the
    repaired deployment after each event — the static gate for
    ``python -m repro.analysis --churn``.
    """
    from ..sharing.system import StreamGlobe

    if scenario.faults is None or not scenario.faults:
        raise ValueError(f"scenario {scenario.name!r} has no fault schedule")
    system = StreamGlobe(scenario.build_network(), strategy=strategy)
    for source in scenario.sources:
        system.register_stream(
            source.name,
            "photons/photon",
            source.generator_factory(),
            frequency=source.frequency,
            source_peer=source.source_peer,
        )
    for spec in scenario.queries:
        system.register_query(spec.name, spec.text, spec.subscriber_peer)
    reports = []
    for event in scenario.faults.events():
        system.apply_fault(event)
        reports.append(
            verify_system(system, title=f"{title}: after {event.describe()}")
        )
    return reports
