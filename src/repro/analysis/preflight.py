"""Glue between the analysis passes and a live :class:`StreamGlobe`.

Entry points per pass:

* :func:`verify_system` / :func:`build_verified_system` — the P1xx/T2xx
  plan verifier (``--plan``);
* :func:`flow_system` / :func:`build_flow_report` — the F4xx abstract
  interpreter (``--flow``);
* :func:`certify_system` / :func:`build_shard_plan` — the S5xx shard
  certifier (``--shards``);
* :func:`build_churned_system` — replay a scenario's fault schedule and
  run the requested passes after every repair (``--churn``, and the
  certificate re-validation gate for ``--flow``/``--shards``).

The ``build_*`` variants register a scenario's full workload *without
executing it* — they are what ``python -m repro.analysis`` runs in CI.
All passes are span-traced through the system's recorder
(``analysis.flow`` / ``analysis.shards`` spans).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .diagnostics import AnalysisReport
from .flow import analyze_flow
from .plan_verifier import verify_deployment
from .shards import ShardPlan, certify_shards

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sharing.system import StreamGlobe
    from ..workload.scenarios import Scenario

__all__ = [
    "build_churned_system",
    "build_flow_report",
    "build_shard_plan",
    "build_verified_system",
    "certify_system",
    "flow_system",
    "verify_system",
]


def verify_system(
    system: "StreamGlobe", title: str = "deployment verification"
) -> AnalysisReport:
    """Verify a system's current deployment against its own catalog."""
    return verify_deployment(system.deployment, catalog=system.catalog, title=title)


def flow_system(
    system: "StreamGlobe", title: str = "flow analysis"
) -> AnalysisReport:
    """Run the F4xx flow pass over a system's current deployment."""
    return analyze_flow(
        system.deployment, system.catalog, title=title, recorder=system.recorder
    )


def certify_system(
    system: "StreamGlobe", title: str = "shard certification"
) -> Tuple[ShardPlan, AnalysisReport]:
    """Run the S5xx shard certifier over a system's current deployment."""
    return certify_shards(
        system.deployment, system.catalog, title=title, recorder=system.recorder
    )


def _build_system(scenario: "Scenario", strategy: str) -> "StreamGlobe":
    """Register a scenario's full workload without executing it."""
    from ..sharing.system import StreamGlobe

    system = StreamGlobe(scenario.build_network(), strategy=strategy)
    for source in scenario.sources:
        system.register_stream(
            source.name,
            "photons/photon",
            source.generator_factory(),
            frequency=source.frequency,
            source_peer=source.source_peer,
        )
    for spec in scenario.queries:
        system.register_query(spec.name, spec.text, spec.subscriber_peer)
    return system


def build_verified_system(
    scenario: "Scenario", strategy: str, title: str = "plan verification"
) -> AnalysisReport:
    """Register ``scenario`` under ``strategy`` and verify the deployment."""
    return verify_system(_build_system(scenario, strategy), title=title)


def build_flow_report(
    scenario: "Scenario", strategy: str, title: str = "flow analysis"
) -> AnalysisReport:
    """Register ``scenario`` under ``strategy`` and run the flow pass."""
    return flow_system(_build_system(scenario, strategy), title=title)


def build_shard_plan(
    scenario: "Scenario", strategy: str, title: str = "shard certification"
) -> Tuple[ShardPlan, AnalysisReport]:
    """Register ``scenario`` under ``strategy`` and certify its shards."""
    return certify_system(_build_system(scenario, strategy), title=title)


def build_churned_system(
    scenario: "Scenario",
    strategy: str,
    title: str = "churn verification",
    passes: Tuple[str, ...] = ("plan",),
) -> List[AnalysisReport]:
    """Register ``scenario``, replay its fault schedule, re-run ``passes``.

    Applies every scheduled fault to the registered (unexecuted)
    deployment through :meth:`StreamGlobe.apply_fault` and re-runs the
    requested passes (``"plan"``, ``"flow"``, ``"shards"``) after each
    event.  Shard certificates are pinned to the topology: each
    re-certification is checked to carry the bumped
    :attr:`~repro.network.topology.Network.version`, so a stale
    certificate can never be mistaken for a fresh one.
    """
    if scenario.faults is None or not scenario.faults:
        raise ValueError(f"scenario {scenario.name!r} has no fault schedule")
    unknown = set(passes) - {"plan", "flow", "shards"}
    if unknown:
        raise ValueError(f"unknown churn passes: {sorted(unknown)}")
    system = _build_system(scenario, strategy)
    last_plan: Optional[ShardPlan] = None
    reports: List[AnalysisReport] = []
    for event in scenario.faults.events():
        system.apply_fault(event)
        context = f"{title}: after {event.describe()}"
        if "plan" in passes:
            reports.append(verify_system(system, title=context))
        if "flow" in passes:
            reports.append(flow_system(system, title=f"flow {context}"))
        if "shards" in passes:
            plan, report = certify_system(system, title=f"shards {context}")
            if plan.network_version != system.net.version:
                report.add(
                    "S501",
                    "shard certificate",
                    f"certificate pinned to network version "
                    f"{plan.network_version} but the topology is at "
                    f"{system.net.version}; re-certification raced a "
                    "topology change",
                )
            if last_plan is not None and plan.network_version <= last_plan.network_version:
                report.add(
                    "S501",
                    "shard certificate",
                    "re-certification after a fault did not observe a "
                    "network version bump; the stale certificate would "
                    "still validate",
                )
            last_plan = plan
            reports.append(report)
    return reports
