"""Repro-specific source linter (pass "b").

A small ``ast``-based linter encoding the correctness rules this
codebase actually depends on — the things a generic linter either does
not know or is not strict enough about:

* ``L301`` **mutable-default-arg** — a ``list``/``dict``/``set``
  default is shared across calls; registration state leaking between
  :class:`StreamGlobe` instances was the motivating near-miss.
* ``L302`` **float-literal-equality** — ``==``/``!=`` against a float
  literal; the cost model's estimates are sums of floats, exact
  comparison silently mis-classifies plans.
* ``L303`` **bare-except** — swallows ``KeyboardInterrupt`` and
  engine invariants alike.
* ``L304`` **frozen-mutation** — ``object.__setattr__`` outside
  ``__init__``/``__post_init__``/``__new__``/``__setattr__`` defeats
  frozen dataclasses (plans and properties are shared by identity;
  mutating them corrupts every holder).
* ``L305`` **silent-broad-except** — ``except Exception: pass``
  (or broader) hides engine failures entirely.
* ``L306`` **stateful-operator** — an operator's ``process``/``flush``
  writing module globals or class attributes: operators are
  instantiated per installed pipeline and must keep their state
  per-instance, or shared plans interfere.
* ``L310`` **unordered-iteration** — iterating a syntactic ``set``
  expression (``set(...)``/``frozenset(...)`` calls, set
  literals/comprehensions, set algebra like ``set(a) - set(b)``) in a
  ``for`` loop, comprehension, an order-sensitive sink
  (``list``/``tuple``/``enumerate``/``str.join``), or a
  serialization boundary (``.dumps``/``.dump``/``.send``/``.put``/
  ``.send_bytes`` — pickle and worker-pipe traffic).  Set iteration
  order is hash-order, so anything derived from it — diagnostics,
  plans, teardown order, bytes crossing a process boundary — silently
  varies across processes; the shard certifier's and the sharded
  executor's determinism guarantees assume it never happens.  Wrap
  in ``sorted(...)`` to fix the order.  (Dicts are insertion-ordered
  in modern Python and are not flagged.)

``lint_paths`` walks files/directories and returns an
:class:`~repro.analysis.diagnostics.AnalysisReport` whose subjects are
``path:line:col`` locations.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional

from .diagnostics import AnalysisReport, Diagnostic

__all__ = ["lint_source", "lint_paths"]

_MUTABLE_CONSTRUCTORS = ("list", "dict", "set")
_INIT_METHODS = ("__init__", "__post_init__", "__new__", "__setattr__", "__setstate__")
_OPERATOR_METHODS = ("process", "flush")
_ORDER_SENSITIVE_SINKS = ("list", "tuple", "enumerate")
#: Attribute calls whose payload crosses a process/wire boundary: the
#: serialized bytes bake in whatever order the payload iterates in.
_SERIALIZATION_SINKS = ("dumps", "dump", "send", "put", "send_bytes")
_SET_ALGEBRA_METHODS = (
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
)


def lint_source(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        line = exc.lineno or 0
        return [
            Diagnostic(
                "L300",
                f"{filename}:{line}:{exc.offset or 0}",
                f"syntax error: {exc.msg}",
            )
        ]
    visitor = _LintVisitor(filename)
    visitor.visit(tree)
    return visitor.diagnostics


def lint_paths(paths: Iterable[str], title: str = "code lint") -> AnalysisReport:
    """Lint ``.py`` files under the given files/directories."""
    report = AnalysisReport(title=title)
    for path in _python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.extend(lint_source(source, filename=path))
    return report


def _python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    return sorted(files)


class _LintVisitor(ast.NodeVisitor):
    """Single-pass visitor tracking the class/function context."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.diagnostics: List[Diagnostic] = []
        self._class_stack: List[str] = []
        self._function_stack: List[str] = []

    # ------------------------------------------------------------------
    def _where(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return f"{self.filename}:{line}:{col}"

    def _report(self, code: str, node: ast.AST, message: str, hint: str = "") -> None:
        self.diagnostics.append(Diagnostic(code, self._where(node), message, hint))

    @property
    def _current_function(self) -> Optional[str]:
        return self._function_stack[-1] if self._function_stack else None

    @property
    def _current_class(self) -> Optional[str]:
        return self._class_stack[-1] if self._class_stack else None

    def _in_operator_method(self) -> bool:
        return (
            self._current_class is not None
            and self._current_function in _OPERATOR_METHODS
        )

    # ------------------------------------------------------------------
    # Scope tracking
    # ------------------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.AST, name: str, args: ast.arguments) -> None:
        self._check_defaults(args)
        self._function_stack.append(name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name, node.args)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name, node.args)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, "<lambda>", node.args)

    # ------------------------------------------------------------------
    # L301 — mutable default arguments
    # ------------------------------------------------------------------
    def _check_defaults(self, args: ast.arguments) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if self._is_mutable_literal(default):
                self._report(
                    "L301",
                    default,
                    "mutable default argument is shared across calls",
                    hint="default to None and create the container in the body",
                )

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS
        )

    # ------------------------------------------------------------------
    # L302 — float literal equality
    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._is_float_literal(left) or self._is_float_literal(right):
                self._report(
                    "L302",
                    node,
                    "exact equality against a float literal",
                    hint="use math.isclose, compare against None/sentinels, "
                    "or restructure so the comparison is unnecessary",
                )
                break
        self.generic_visit(node)

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        )

    # ------------------------------------------------------------------
    # L303 / L305 — exception handling
    # ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "L303",
                node,
                "bare except catches SystemExit and KeyboardInterrupt",
                hint="name the exception types this handler is prepared for",
            )
        elif self._is_broad_type(node.type) and self._is_silent_body(node.body):
            self._report(
                "L305",
                node,
                "broad exception handler silently discards the error",
                hint="narrow the exception type or handle/log the failure",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad_type(node: ast.expr) -> bool:
        names = []
        if isinstance(node, ast.Name):
            names = [node.id]
        elif isinstance(node, ast.Tuple):
            names = [e.id for e in node.elts if isinstance(e, ast.Name)]
        return any(name in ("Exception", "BaseException") for name in names)

    @staticmethod
    def _is_silent_body(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    # ------------------------------------------------------------------
    # L304 — frozen dataclass mutation
    # L310 — unordered iteration through order-sensitive call sinks
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and self._current_function not in _INIT_METHODS
        ):
            self._report(
                "L304",
                node,
                "object.__setattr__ outside construction mutates a frozen instance",
                hint="frozen dataclasses (plans, properties, links) are shared "
                "by identity; build a new instance instead",
            )
        sink = None
        serializing = False
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_SINKS:
            sink = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            sink = "join"
        elif isinstance(func, ast.Attribute) and func.attr in _SERIALIZATION_SINKS:
            sink = func.attr
            serializing = True
        if sink is not None:
            args = node.args if serializing else node.args[:1]
            for arg in args:
                if self._is_set_expr(arg):
                    message = (
                        f"{sink}() serializes a set expression in hash order"
                        if serializing
                        else f"{sink}() materializes a set expression in hash order"
                    )
                    self._report(
                        "L310",
                        arg,
                        message,
                        hint="wrap the set expression in sorted(...) so the "
                        "resulting order is deterministic",
                    )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # L310 — iterating unordered set expressions
    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_unordered_iteration(node.iter)
        self.generic_visit(node)

    def _check_unordered_iteration(self, iterable: ast.expr) -> None:
        if self._is_set_expr(iterable):
            self._report(
                "L310",
                iterable,
                "iteration over an unordered set expression; the visit "
                "order is hash-order and varies across processes",
                hint="wrap the set expression in sorted(...) so everything "
                "derived from the loop is deterministic",
            )

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Syntactically recognizable set-valued expressions."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_ALGEBRA_METHODS
                and self._is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    # ------------------------------------------------------------------
    # L306 — operators mutating shared state in process/flush
    # ------------------------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        if self._in_operator_method():
            self._report(
                "L306",
                node,
                f"operator method {self._current_function}() rebinds module "
                f"global(s) {', '.join(node.names)}",
                hint="operators run once per installed pipeline; keep state "
                "on self so shared plans cannot interfere",
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._in_operator_method():
            for target in node.targets:
                self._check_shared_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._in_operator_method():
            self._check_shared_target(node.target)
        self.generic_visit(node)

    def _check_shared_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_shared_target(element)
            return
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return
        base = node.value
        is_class_attr = (
            (isinstance(base, ast.Name) and base.id == self._current_class)
            or (
                isinstance(base, ast.Attribute)
                and base.attr == "__class__"
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            )
            or (
                isinstance(base, ast.Call)
                and isinstance(base.func, ast.Name)
                and base.func.id == "type"
                and len(base.args) == 1
                and isinstance(base.args[0], ast.Name)
                and base.args[0].id == "self"
            )
        )
        if is_class_attr:
            self._report(
                "L306",
                target,
                f"operator method {self._current_function}() mutates class-level "
                f"state {ast.unparse(node) if hasattr(ast, 'unparse') else node.attr}",
                hint="state written in process()/flush() must live on the "
                "instance, not the class",
            )
