"""Abstract interpretation over the deployed stream network (flow pass).

The plan verifier (P1xx) checks *point* invariants on a finished
deployment; this pass *derives* facts about it.  Per installed stream it
computes :class:`FlowFacts` — an interval-valued abstraction of the
stream's runtime behaviour — by propagating facts from the original
source streams through every compensation pipeline in topological
(parent-before-child) order.

Abstract domain
---------------

``FlowFacts`` is the product of three components:

* ``frequency`` — an :class:`Interval` of emissions per virtual second;
* ``item_size`` — an :class:`Interval` of serialized bytes per item;
* ``burst`` — an additive, duration-independent count slack.

The concretisation is: over any run of virtual duration ``D``, the
stream produces between ``⌊frequency.lo · D⌋ − burst`` and
``frequency.hi · D + burst`` items (see :meth:`FlowFacts.count_bounds`),
each serialized within ``item_size``.  The hypothesis property test in
``tests/test_prop_flow_soundness.py`` checks this containment against
measured :meth:`~repro.engine.executor.StreamSimulator.stream_counts`.

Transformers
------------

The abstract transformers mirror the cost model's point estimators
(:func:`repro.costmodel.estimate_stream_rate`) but are *conservative*
where the estimators use averages:

* a source stream's mean frequency ``f`` widens to
  ``[f / SOURCE_RATE_SLACK, f · SOURCE_RATE_SLACK]`` — the photon
  generator jitters inter-arrival gaps by ±40% around ``1/f``, so a
  slack factor of 2 soundly covers any jitter ≤ 100%;
* a selection keeps ``[0, hi]`` (selectivity is an average, the true
  pass rate may be anything below 1);
* a count window of step µ emits at most one item per µ arrivals;
* a time-based (diff) window's emission count is *not* bounded by its
  input count — one arriving item can complete many windows — so it is
  bounded through the reference element instead: the reference advances
  at most ``max_increment`` per raw arrival (the sampled maximum, widened
  by :data:`INCREMENT_SLACK`), and each µ of reference span completes at
  most one window;
* a UDF has unknown semantics: its output facts are ⊤ (``[0, ∞)``).

Diagnostics (F4xx)
------------------

* ``F400`` (warning) — an original stream has no statistics catalog
  entry, so no facts can be derived for it or its descendants;
* ``F401`` (error) — the cost model's committed rate for a stream lies
  *outside* the interval derived from its actual parent lineage: the
  content the planner priced is inconsistent with how the stream is
  really derived (unsound rate estimate);
* ``F402`` (warning) — a dead stream: installed and committing
  resources in the usage ledger, but never delivered to a query nor
  tapped by a live descendant (liveness via
  :func:`repro.sharing.deregister.live_stream_ids`).  A warning, not an
  error: administrative streams installed through
  :meth:`StreamGlobe.install_derived_stream` are legitimately dead
  until a query attaches or a deregistration sweep collects them;
* ``F403`` (warning) — missed sharing: a stream recomputes its pipeline
  from the raw source although a matching derived stream
  (:func:`repro.matching.match_stream_properties`) of another query was
  available on a node of its route.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..costmodel import (
    AGGREGATE_ITEM_SIZE,
    StatisticsCatalog,
    StreamStatistics,
    estimate_stream_rate,
)
from ..engine.executor import topological_streams
from ..matching import match_stream_properties
from ..obs import NULL_RECORDER
from ..properties import (
    AggregationSpec,
    OperatorSpec,
    ReAggregationSpec,
    WindowContentsSpec,
    WindowSpec,
)
from ..sharing.deregister import live_stream_ids
from ..sharing.plan import Deployment, InstalledStream
from .diagnostics import AnalysisReport, Diagnostic

__all__ = [
    "FlowFacts",
    "INCREMENT_SLACK",
    "Interval",
    "SIZE_SLACK",
    "SOURCE_RATE_SLACK",
    "analyze_flow",
    "derive_stream_facts",
]

INF = float("inf")

#: Widening factor on a source's catalog mean frequency.  The photon
#: generator draws inter-arrival gaps uniformly from ``(1 ± 0.4)/f``
#: (clamped ≥ ``0.01/f``), so a factor of 2 covers any jitter ≤ 100%.
SOURCE_RATE_SLACK = 2.0

#: Widening factor on average serialized sizes (item sizes vary with
#: optional elements; aggregate wire sizes are "within a few bytes").
SIZE_SLACK = 2.0

#: Widening factor on the *sampled* maximum reference increment — the
#: true maximum of a 400-item sample of a uniform jitter distribution
#: sits below the distribution's supremum.
INCREMENT_SLACK = 2.0

#: Relative tolerance when checking a committed point estimate against
#: a derived interval (floating-point noise only).
_ESTIMATE_TOLERANCE = 1e-6

#: Wire envelope of a window-contents batch, widened from the cost
#: model's ``2 × 8`` bytes.
_BATCH_ENVELOPE = 32.0


@dataclass(frozen=True)
class Interval:
    """A closed non-negative interval ``[lo, hi]``; ``hi`` may be ∞."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo < 0 or math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError(f"invalid interval bounds [{self.lo}, {self.hi}]")
        if self.hi < self.lo:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @staticmethod
    def top() -> "Interval":
        """The ⊤ element: no information, ``[0, ∞)``."""
        return Interval(0.0, INF)

    def contains(self, value: float, rel_tol: float = _ESTIMATE_TOLERANCE) -> bool:
        """Whether ``value`` lies inside, up to relative tolerance."""
        low = self.lo * (1.0 - rel_tol)
        high = self.hi if math.isinf(self.hi) else self.hi * (1.0 + rel_tol)
        return low <= value <= high

    def scale(self, factor: float) -> "Interval":
        if factor < 0:
            raise ValueError("intervals are non-negative; factor must be ≥ 0")
        return Interval(self.lo * factor, self.hi * factor)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __str__(self) -> str:
        hi = "inf" if math.isinf(self.hi) else f"{self.hi:.6g}"
        return f"[{self.lo:.6g}, {hi}]"


@dataclass(frozen=True)
class FlowFacts:
    """Interval facts about one installed stream."""

    frequency: Interval  # emissions per virtual second
    item_size: Interval  # serialized bytes per item
    burst: float  # additive, duration-independent count slack

    def count_bounds(self, duration: float) -> Tuple[float, float]:
        """Sound bounds on the item count over ``duration`` seconds."""
        if duration < 0:
            raise ValueError("duration must be ≥ 0")
        low = max(0.0, math.floor(self.frequency.lo * duration) - self.burst)
        if math.isinf(self.frequency.hi):
            return low, INF
        return low, self.frequency.hi * duration + self.burst

    def __str__(self) -> str:
        return (
            f"freq {self.frequency} items/s · size {self.item_size} B"
            f" · burst {self.burst:g}"
        )


# ----------------------------------------------------------------------
# Fact derivation
# ----------------------------------------------------------------------
def derive_stream_facts(
    deployment: Deployment, catalog: StatisticsCatalog
) -> Dict[str, FlowFacts]:
    """Propagate facts source → descendants over the stream forest.

    Streams whose original source has no catalog statistics get no
    entry (and neither do their descendants) — :func:`analyze_flow`
    reports those as ``F400``.
    """
    facts: Dict[str, FlowFacts] = {}
    for stream in topological_streams(deployment):
        if stream.is_original:
            if stream.content.stream in catalog:
                stats = catalog.for_stream(stream.content.stream)
                facts[stream.stream_id] = _source_facts(stats)
            continue
        if stream.parent_id is None:  # pragma: no cover - invalid plans
            continue
        parent = facts.get(stream.parent_id)
        if parent is None:
            continue
        stats = (
            catalog.for_stream(stream.content.stream)
            if stream.content.stream in catalog
            else None
        )
        current = parent
        for spec in stream.pipeline:
            current = _transform(spec, current, stats)
        facts[stream.stream_id] = current
    return facts


def _source_facts(stats: StreamStatistics) -> FlowFacts:
    frequency = Interval(
        stats.frequency / SOURCE_RATE_SLACK, stats.frequency * SOURCE_RATE_SLACK
    )
    item_size = Interval(
        stats.avg_item_size / SIZE_SLACK, stats.avg_item_size * SIZE_SLACK
    )
    # The pump emits at least one item for any positive horizon.
    return FlowFacts(frequency=frequency, item_size=item_size, burst=1.0)


def _transform(
    spec: OperatorSpec, facts: FlowFacts, stats: Optional[StreamStatistics]
) -> FlowFacts:
    """The abstract transformer of one compensation-pipeline stage."""
    if spec.kind == "selection":
        return FlowFacts(
            frequency=Interval(0.0, facts.frequency.hi),
            item_size=facts.item_size,
            burst=facts.burst,
        )
    if spec.kind == "projection":
        # Pruning a serialized tree never grows it.
        return FlowFacts(
            frequency=facts.frequency,
            item_size=Interval(0.0, facts.item_size.hi),
            burst=facts.burst,
        )
    if spec.kind == "aggregation":
        assert isinstance(spec, AggregationSpec)
        frequency, burst = _window_output(spec.window, facts, stats)
        if spec.is_filtered:
            frequency = Interval(0.0, frequency.hi)
        return FlowFacts(
            frequency=frequency,
            item_size=_aggregate_size(spec.function),
            burst=burst,
        )
    if spec.kind == "window":
        assert isinstance(spec, WindowContentsSpec)
        frequency, burst = _window_output(spec.window, facts, stats)
        if spec.window.kind == "count":
            size = Interval(
                0.0, float(spec.window.size) * facts.item_size.hi + _BATCH_ENVELOPE
            )
        else:
            # A diff window may hold arbitrarily many items.
            size = Interval(0.0, INF)
        return FlowFacts(frequency=frequency, item_size=size, burst=burst)
    if spec.kind == "reaggregation":
        assert isinstance(spec, ReAggregationSpec)
        # One emission per µ'/µ arriving reused aggregates.
        stride = max(1.0, float(spec.new.window.step / spec.reused.window.step))
        frequency = Interval(0.0, facts.frequency.hi / stride)
        return FlowFacts(
            frequency=frequency,
            item_size=_aggregate_size(spec.new.function),
            burst=facts.burst + 1.0,
        )
    if spec.kind == "restructure":
        # Per-item structural rewrite: counts unchanged, size unknown.
        return FlowFacts(
            frequency=facts.frequency,
            item_size=Interval.top(),
            burst=facts.burst,
        )
    # Unknown operators (UDFs included): no information survives.
    return FlowFacts(
        frequency=Interval.top(), item_size=Interval.top(), burst=facts.burst
    )


def _window_output(
    window: WindowSpec, facts: FlowFacts, stats: Optional[StreamStatistics]
) -> Tuple[Interval, float]:
    """Frequency interval and burst slack of a windowing stage."""
    step = float(window.step)
    if window.kind == "count":
        # One emission per µ arrivals, plus the first-window offset.
        frequency = Interval(0.0, facts.frequency.hi / step)
        burst = facts.burst / min(1.0, step) + 1.0
        return frequency, burst
    # Time-based window: bounded through the reference element.  The
    # reference is a value of the *raw* stream, so its span over any
    # period is bounded by the raw arrival count times the maximum
    # per-item increment — a bound that survives upstream selections
    # (a subsequence spans no more than the full sequence).
    assert window.reference is not None
    max_increment = (
        stats.max_increment(window.reference) if stats is not None else None
    )
    if stats is None or max_increment is None or max_increment <= 0:
        return Interval.top(), facts.burst + 1.0
    advance = max_increment * INCREMENT_SLACK
    raw_high = stats.frequency * SOURCE_RATE_SLACK
    frequency = Interval(0.0, raw_high * advance / step)
    # One partial window at the origin plus the raw pump's burst item.
    burst = facts.burst + advance / step + 1.0
    return frequency, burst


def _aggregate_size(function: str) -> Interval:
    wire = AGGREGATE_ITEM_SIZE[function]
    return Interval(wire / SIZE_SLACK, wire * SIZE_SLACK)


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------
def analyze_flow(
    deployment: Deployment,
    catalog: StatisticsCatalog,
    title: str = "flow analysis",
    recorder: object = None,
) -> AnalysisReport:
    """Run the flow pass and report F4xx diagnostics."""
    rec = recorder if recorder is not None else NULL_RECORDER
    with rec.span(  # type: ignore[attr-defined]
        "analysis.flow", streams=len(deployment.streams)
    ):
        return _analyze_flow(deployment, catalog, title)


def _analyze_flow(
    deployment: Deployment, catalog: StatisticsCatalog, title: str
) -> AnalysisReport:
    report = AnalysisReport(title=title)
    facts = derive_stream_facts(deployment, catalog)

    # F400 — underivable streams (missing catalog statistics).
    missing = sorted(
        {
            stream.content.stream
            for stream in deployment.streams.values()
            if stream.is_original and stream.content.stream not in catalog
        }
    )
    for name in missing:
        report.add(
            "F400",
            f"stream {name!r}",
            "original stream has no statistics catalog entry; no flow "
            "facts can be derived for it or its descendants",
            hint="register the source through StreamGlobe.register_stream "
            "so a sample is measured",
            severity="warning",
        )

    # F401 — committed estimates outside the derived interval.
    for stream_id in sorted(facts):
        stream = deployment.streams[stream_id]
        derived = facts[stream_id]
        committed = estimate_stream_rate(stream.content, catalog)
        if not derived.frequency.contains(committed.frequency):
            report.add(
                "F401",
                f"stream {stream_id}",
                f"committed frequency {committed.frequency:.6g} items/s lies "
                f"outside the interval {derived.frequency} derived from its "
                "parent lineage",
                hint="the stream's content disagrees with its derivation: "
                "the planner priced a different pipeline than the one "
                "installed",
            )
        if not derived.item_size.contains(committed.size):
            report.add(
                "F401",
                f"stream {stream_id}",
                f"committed item size {committed.size:.6g} B lies outside "
                f"the interval {derived.item_size} derived from its parent "
                "lineage",
                hint="the stream's content disagrees with its derivation: "
                "the planner priced a different pipeline than the one "
                "installed",
            )

    # F402 — dead streams still committing resources.
    live = live_stream_ids(deployment)
    for stream_id in sorted(deployment.streams):
        if stream_id in live:
            continue
        stream = deployment.streams[stream_id]
        report.add(
            "F402",
            f"stream {stream_id}",
            "dead stream: derived but never delivered to a query nor "
            "tapped by a live descendant; its route "
            f"{' → '.join(stream.route)} still commits usage-ledger "
            "resources",
            hint="the next deregistration sweep will garbage-collect it "
            "(repro.sharing.deregister); attach a query if it is meant "
            "to stay",
            severity="warning",
        )

    # F403 — provably subsumable but unshared plans.
    report.extend(_missed_sharing(deployment))
    return report


def _missed_sharing(deployment: Deployment) -> List[Diagnostic]:
    """F403: streams that recompute from raw despite a matching stream.

    Only streams tapping the *original* directly are considered — a
    stream already deriving from a shared intermediate is reusing.  The
    candidate must belong to another query, carry operators (otherwise
    there is nothing to save), be available on the recomputing stream's
    origin node, and match per Algorithm 2.
    """
    diagnostics: List[Diagnostic] = []
    streams = deployment.streams
    for stream_id in sorted(streams):
        stream = streams[stream_id]
        if stream.is_original or not stream.pipeline:
            continue
        parent = streams.get(stream.parent_id) if stream.parent_id else None
        if parent is None or not parent.is_original:
            continue
        for other_id in sorted(streams):
            other = streams[other_id]
            if (
                other_id == stream_id
                or other.is_original
                or not other.content.operators
                or other.query == stream.query
                or stream.origin_node not in other.route
                or _related(streams, stream, other)
            ):
                continue
            if match_stream_properties(other.content, stream.content):
                diagnostics.append(
                    Diagnostic(
                        "F403",
                        f"stream {stream_id}",
                        f"recomputes {len(stream.pipeline)} operator(s) from "
                        f"the raw stream although matching stream {other_id} "
                        f"(query {other.query!r}) was available at "
                        f"{stream.origin_node}",
                        hint="the plan is subsumable: rewriting it to tap "
                        f"{other_id} would share the operator work",
                        severity="warning",
                    )
                )
                break  # one witness per stream is enough
    return diagnostics


def _related(
    streams: Dict[str, InstalledStream],
    first: InstalledStream,
    second: InstalledStream,
) -> bool:
    """Whether one stream is an ancestor of the other."""
    return _is_ancestor(streams, first, second) or _is_ancestor(
        streams, second, first
    )


def _is_ancestor(
    streams: Dict[str, InstalledStream],
    ancestor: InstalledStream,
    descendant: InstalledStream,
) -> bool:
    cursor: Optional[str] = descendant.parent_id
    while cursor is not None:
        if cursor == ancestor.stream_id:
            return True
        node = streams.get(cursor)
        cursor = node.parent_id if node is not None else None
    return False
