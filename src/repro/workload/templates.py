"""Query templates for the evaluation workloads (Section 4).

"The queries were generated using query templates for selection,
projection, and aggregation queries.  Constant values, e.g., in
selection predicates or data window definitions, were chosen uniformly
from a predefined set of values to enable a certain degree of
shareability."

Three template families over a photon stream:

* **selection** — a sky-region box plus an optional energy threshold,
  returning the full attribute set;
* **projection** — the same predicate structure but returning one of a
  few fixed element subsets;
* **aggregation** — a region pre-selection, a data window from a small
  lattice of (∆, µ) pairs chosen so the ``mod``-compatibility conditions
  of MatchAggregations frequently hold, one of the five aggregation
  functions, and an optional result filter.

Everything is drawn from the predefined pools below with a seeded RNG,
so workloads are reproducible and overlap (and hence shareability) is
controlled by the pool sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Sky-region boxes (ra_min, ra_max, dec_min, dec_max).  The first two
#: are the paper's running examples (vela and RX J0852.0-4622, nested);
#: repetitions raise the collision rate the paper engineered via small
#: constant pools.
REGIONS: Tuple[Tuple[float, float, float, float], ...] = (
    (120.0, 138.0, -49.0, -40.0),   # vela supernova remnant (Query 1)
    (130.5, 135.5, -48.0, -45.0),   # RX J0852.0-4622 (Query 2), inside vela
    (110.0, 150.0, -55.0, -30.0),   # wide survey cut
    (120.0, 138.0, -49.0, -40.0),   # vela again (pool weighting)
    (105.0, 125.0, -40.0, -25.0),   # northern field
    (140.0, 155.0, -52.0, -35.0),   # eastern field
)

#: Optional lower bounds on photon energy (keV); None = no energy cut.
ENERGY_MINS: Tuple[Optional[float], ...] = (None, None, 0.8, 1.3)

#: Projection element subsets (paths relative to a photon item).
OUTPUT_SETS: Tuple[Tuple[str, ...], ...] = (
    ("coord/cel/ra", "coord/cel/dec", "phc", "en", "det_time"),
    ("coord/cel/ra", "coord/cel/dec", "en", "det_time"),
    ("coord/cel/ra", "coord/cel/dec", "det_time"),
    ("en", "det_time"),
)

#: Time-based (∆, µ) pairs in det_time units.  The lattice is built so
#: many pairs satisfy ∆' mod ∆ = 0, ∆ mod µ = 0, µ' mod µ = 0 against
#: each other (e.g. (8,4) shares into (16,8), (32,16), ...).
TIME_WINDOWS: Tuple[Tuple[int, int], ...] = ((8, 4), (16, 8), (16, 4), (32, 16), (8, 8))

#: Item-based (∆, µ) pairs.
COUNT_WINDOWS: Tuple[Tuple[int, int], ...] = ((50, 25), (100, 50), (200, 100))

#: Aggregation functions with pool weighting (avg dominates, as in the
#: motivating astronomy workload).
AGG_FUNCTIONS: Tuple[str, ...] = ("avg", "avg", "sum", "count", "max", "min")

#: Optional filters on avg results (keV thresholds).
AVG_FILTERS: Tuple[Optional[float], ...] = (None, None, None, 1.0, 1.3)

TEMPLATE_KINDS = ("selection", "projection", "aggregation")


@dataclass(frozen=True)
class GeneratedQuery:
    """One workload subscription: a name, its WXQuery text, its kind."""

    name: str
    text: str
    kind: str


class QueryTemplateGenerator:
    """Draws subscriptions from the template pools with a seeded RNG."""

    def __init__(
        self,
        stream: str = "photons",
        seed: int = 20060326,
        kind_weights: Sequence[float] = (0.4, 0.3, 0.3),
    ) -> None:
        if len(kind_weights) != 3:
            raise ValueError("kind_weights needs one weight per template kind")
        self.stream = stream
        self._rng = random.Random(seed)
        self._weights = list(kind_weights)
        self._counter = 0

    # ------------------------------------------------------------------
    def generate(self, count: int) -> List[GeneratedQuery]:
        """Generate ``count`` subscriptions."""
        return [self.generate_one() for _ in range(count)]

    def generate_one(self) -> GeneratedQuery:
        kind = self._rng.choices(TEMPLATE_KINDS, weights=self._weights)[0]
        self._counter += 1
        name = f"Q{self._counter:03d}"
        if kind == "selection":
            text = self._selection_query(full_output=True)
        elif kind == "projection":
            text = self._selection_query(full_output=False)
        else:
            text = self._aggregation_query()
        return GeneratedQuery(name=name, text=text, kind=kind)

    # ------------------------------------------------------------------
    # Template bodies
    # ------------------------------------------------------------------
    def _predicate(self) -> str:
        ra0, ra1, dec0, dec1 = self._rng.choice(REGIONS)
        atoms = [
            f"$p/coord/cel/ra >= {ra0}",
            f"$p/coord/cel/ra <= {ra1}",
            f"$p/coord/cel/dec >= {dec0}",
            f"$p/coord/cel/dec <= {dec1}",
        ]
        energy = self._rng.choice(ENERGY_MINS)
        if energy is not None:
            atoms.append(f"$p/en >= {energy}")
        return " and ".join(atoms)

    def _selection_query(self, full_output: bool) -> str:
        predicate = self._predicate()
        outputs = OUTPUT_SETS[0] if full_output else self._rng.choice(OUTPUT_SETS[1:])
        returns = " ".join(f"{{ $p/{path} }}" for path in outputs)
        return (
            f"<photons>{{ for $p in stream(\"{self.stream}\")/photons/photon "
            f"where {predicate} "
            f"return <match> {returns} </match> }}</photons>"
        )

    def _aggregation_query(self) -> str:
        ra0, ra1, dec0, dec1 = self._rng.choice(REGIONS)
        condition = (
            f"coord/cel/ra >= {ra0} and coord/cel/ra <= {ra1} "
            f"and coord/cel/dec >= {dec0} and coord/cel/dec <= {dec1}"
        )
        function = self._rng.choice(AGG_FUNCTIONS)
        if self._rng.random() < 0.7:
            size, step = self._rng.choice(TIME_WINDOWS)
            window = f"|det_time diff {size} step {step}|"
        else:
            size, step = self._rng.choice(COUNT_WINDOWS)
            window = f"|count {size} step {step}|"
        having = ""
        if function == "avg":
            threshold = self._rng.choice(AVG_FILTERS)
            if threshold is not None:
                having = f"where $a >= {threshold} "
        return (
            f"<photons>{{ for $w in stream(\"{self.stream}\")/photons/photon "
            f"[{condition}] {window} "
            f"let $a := {function}($w/en) "
            f"{having}"
            f"return <agg_result> {{ $a }} </agg_result> }}</photons>"
        )
