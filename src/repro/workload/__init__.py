"""Workload substrate: synthetic photon streams, query templates, scenarios."""

from .photons import (
    HotSpot,
    PhotonGenerator,
    PhotonStreamConfig,
    RXJ_REGION,
    SKY_STRIP,
    SkyRegion,
    VELA_REGION,
    average_item_size,
)
from .scenarios import (
    QuerySpec,
    Scenario,
    SourceSpec,
    scenario_churn,
    scenario_grid,
    scenario_one,
    scenario_two,
)
from .trace import (
    TraceError,
    TraceReplayGenerator,
    load_trace,
    record_trace,
    save_trace,
)
from .templates import (
    AGG_FUNCTIONS,
    COUNT_WINDOWS,
    ENERGY_MINS,
    GeneratedQuery,
    OUTPUT_SETS,
    QueryTemplateGenerator,
    REGIONS,
    TIME_WINDOWS,
)

__all__ = [
    "AGG_FUNCTIONS",
    "COUNT_WINDOWS",
    "ENERGY_MINS",
    "GeneratedQuery",
    "HotSpot",
    "OUTPUT_SETS",
    "PhotonGenerator",
    "PhotonStreamConfig",
    "QuerySpec",
    "QueryTemplateGenerator",
    "REGIONS",
    "RXJ_REGION",
    "SKY_STRIP",
    "Scenario",
    "SkyRegion",
    "SourceSpec",
    "TIME_WINDOWS",
    "TraceError",
    "TraceReplayGenerator",
    "VELA_REGION",
    "average_item_size",
    "load_trace",
    "record_trace",
    "save_trace",
    "scenario_churn",
    "scenario_grid",
    "scenario_one",
    "scenario_two",
]
