"""Stream trace recording and replay.

The reproduction substitutes synthetic photons for the paper's RASS
data (DESIGN.md).  Anyone holding *real* stream data can feed it in
through this module instead: a trace is a plain text file of
concatenated serialized items (the same wire format the engine
transmits), replayed through the :class:`TraceReplayGenerator`, which
implements the executor's ``ItemGenerator`` protocol.

The virtual clock during replay comes from a reference element inside
the items themselves (``det_time`` by default) — rebased so the first
item arrives at time zero — or, when no reference exists, from a fixed
configured frequency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..xmlkit import Element, Path, parse_stream, serialize


class TraceError(Exception):
    """Raised for empty or inconsistent traces."""


def record_trace(items: Iterable[Element]) -> str:
    """Serialize items into trace text (one concatenated stream)."""
    return "\n".join(serialize(item) for item in items) + "\n"


def save_trace(items: Iterable[Element], path: str) -> int:
    """Write a trace file; returns the number of items written."""
    materialized = list(items)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(record_trace(materialized))
    return len(materialized)


def load_trace(path: str) -> List[Element]:
    """Parse a trace file back into items."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_stream(handle.read())


class TraceReplayGenerator:
    """Replay recorded items on a virtual clock.

    Parameters
    ----------
    items:
        The trace to replay, in order.
    reference:
        Path (relative to the item root) of the timing element; its
        values, rebased to start at zero, drive the clock.  When
        ``None`` or missing on an item, ``frequency`` paces the clock.
    frequency:
        Fallback pacing in items per second.
    loop:
        Replay from the start after the last item (the reference clock
        keeps increasing monotonically across loops).
    """

    def __init__(
        self,
        items: Sequence[Element],
        reference: Optional[Path] = Path("det_time"),
        frequency: float = 100.0,
        loop: bool = False,
    ) -> None:
        if not items:
            raise TraceError("cannot replay an empty trace")
        if frequency <= 0:
            raise TraceError("fallback frequency must be positive")
        self._items = list(items)
        self._reference = reference
        self._frequency = frequency
        self._loop = loop
        self._index = 0
        self._clock = 0.0
        self._epoch = 0.0       # clock offset of the current loop pass
        self._base: Optional[float] = self._item_time(self._items[0])
        self._span: Optional[float] = None
        if self._base is not None:
            last = self._item_time(self._items[-1])
            if last is not None and last >= self._base:
                self._span = (last - self._base) + 1.0 / frequency

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "TraceReplayGenerator":
        return cls(load_trace(path), **kwargs)

    # ------------------------------------------------------------------
    # ItemGenerator protocol
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        return self._clock

    def next_item(self) -> Element:
        if self._index >= len(self._items):
            if not self._loop:
                raise TraceError("trace exhausted (construct with loop=True to cycle)")
            self._index = 0
            self._epoch = (
                self._clock + 1.0 / self._frequency
                if self._span is None
                else self._epoch + self._span
            )
        item = self._items[self._index]
        self._index += 1
        stamp = self._item_time(item)
        if stamp is not None and self._base is not None:
            self._clock = self._epoch + (stamp - self._base)
        else:
            self._clock += 1.0 / self._frequency
        return item.copy()

    @property
    def remaining(self) -> int:
        """Items left in the current pass (unbounded traces loop)."""
        return len(self._items) - self._index

    def _item_time(self, item: Element) -> Optional[float]:
        if self._reference is None:
            return None
        return self._reference.number(item)
