"""The two evaluation scenarios of Section 4, as declarative setups.

* **Scenario 1** — the extended running example: the 8-super-peer
  topology of Figures 1/2, one photon stream registered by the
  telescope thin-peer P0 at SP4, and 25 template queries registered by
  the astrophysicists' thin-peers P1–P4.
* **Scenario 2** — a 4×4 super-peer grid with two photon streams at
  opposite corners and 100 template queries registered across eight
  subscriber thin-peers.

Both are pure descriptions; :mod:`repro.bench.harness` instantiates
them per strategy and executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..faults import FaultSchedule, LinkFailure, SuperPeerCrash, SuperPeerRejoin
from ..network.topology import Network, example_topology, grid_topology
from .photons import HotSpot, PhotonGenerator, PhotonStreamConfig, SkyRegion
from .templates import QueryTemplateGenerator


@dataclass(frozen=True)
class SourceSpec:
    """One registered original data stream."""

    name: str
    source_peer: str
    frequency: float
    config: PhotonStreamConfig

    def generator_factory(self) -> Callable[[], PhotonGenerator]:
        config = self.config
        return lambda: PhotonGenerator(config)


@dataclass(frozen=True)
class QuerySpec:
    """One subscription to register: name, text, subscriber, kind."""

    name: str
    text: str
    subscriber_peer: str
    kind: str


@dataclass
class Scenario:
    """A complete benchmark setup."""

    name: str
    network_factory: Callable[[], Network] = field(repr=False)
    sources: List[SourceSpec] = field(default_factory=list)
    queries: List[QuerySpec] = field(default_factory=list)
    #: Virtual seconds of stream input per execution.
    duration: float = 60.0
    #: Optional churn: faults applied (and repaired) during execution.
    faults: Optional[FaultSchedule] = None

    def build_network(self) -> Network:
        return self.network_factory()


def scenario_one(seed: int = 20060326, query_count: int = 25) -> Scenario:
    """8 super-peers, 1 data stream, 25 queries (Figure 6, Table 1)."""
    config = PhotonStreamConfig(seed=seed, frequency=100.0)
    generator = QueryTemplateGenerator(stream="photons", seed=seed)
    subscribers = ("P1", "P2", "P3", "P4")
    queries = [
        QuerySpec(
            name=generated.name,
            text=generated.text,
            subscriber_peer=subscribers[index % len(subscribers)],
            kind=generated.kind,
        )
        for index, generated in enumerate(generator.generate(query_count))
    ]
    return Scenario(
        name="scenario-1",
        network_factory=example_topology,
        sources=[SourceSpec("photons", "P0", 100.0, config)],
        queries=queries,
        duration=60.0,
    )


def _grid_network() -> Network:
    """The 4×4 grid plus the scenario's thin-peers."""
    net = grid_topology(4, 4)
    net.add_thin_peer("T0", "SP0")    # first telescope
    net.add_thin_peer("T1", "SP15")   # second telescope
    for index, home in enumerate(
        ("SP3", "SP5", "SP6", "SP9", "SP10", "SP12", "SP7", "SP14")
    ):
        net.add_thin_peer(f"U{index}", home)
    return net


#: A second survey field for the grid scenario's second stream.
_SECOND_STRIP = SkyRegion(100.0, 160.0, -60.0, -20.0)


def scenario_grid(
    rows: int,
    cols: int,
    query_count: int,
    seed: int = 20060328,
    duration: float = 60.0,
) -> Scenario:
    """A parameterized grid scenario (scalability studies, bench E10).

    One photon stream at the top-left corner, subscribers spread over
    every other super-peer round-robin.
    """
    net_rows, net_cols = rows, cols

    def build() -> Network:
        net = grid_topology(net_rows, net_cols)
        net.add_thin_peer("T0", "SP0")
        peers = [name for name in net.super_peer_names() if name != "SP0"]
        for index, home in enumerate(peers):
            net.add_thin_peer(f"U{index}", home)
        return net

    subscriber_count = rows * cols - 1
    generator = QueryTemplateGenerator(stream="photons", seed=seed)
    queries = [
        QuerySpec(
            name=generated.name,
            text=generated.text,
            subscriber_peer=f"U{index % subscriber_count}",
            kind=generated.kind,
        )
        for index, generated in enumerate(generator.generate(query_count))
    ]
    return Scenario(
        name=f"grid-{rows}x{cols}",
        network_factory=build,
        sources=[SourceSpec("photons", "T0", 100.0, PhotonStreamConfig(seed=seed, frequency=100.0))],
        queries=queries,
        duration=duration,
    )


def scenario_churn(
    rows: int = 3,
    cols: int = 3,
    query_count: int = 12,
    seed: int = 20060329,
    duration: float = 30.0,
    crash_peer: str = "SP1",
    crash_at: float = 10.0,
    rejoin_at: Optional[float] = 20.0,
    fail_link: Optional[tuple] = None,
) -> Scenario:
    """A grid scenario under churn: one super-peer crashes mid-run.

    The stream enters at the grid's top-left corner, so with the
    default 3×3 grid the crash of ``SP1`` (the corner's right
    neighbour) severs live routes and forces plan repair to detour the
    affected subscriptions around the hole.  ``rejoin_at=None`` keeps
    the peer down for the rest of the run; ``fail_link=(a, b)`` adds an
    independent link failure at ``crash_at + 2``.
    """
    scenario = scenario_grid(
        rows, cols, query_count, seed=seed, duration=duration
    )
    events: List[object] = [SuperPeerCrash(time=crash_at, peer=crash_peer)]
    if fail_link is not None:
        a, b = fail_link
        events.append(LinkFailure(time=crash_at + 2.0, a=a, b=b))
    if rejoin_at is not None:
        events.append(SuperPeerRejoin(time=rejoin_at, peer=crash_peer))
    return Scenario(
        name=f"churn-{rows}x{cols}",
        network_factory=scenario.network_factory,
        sources=scenario.sources,
        queries=scenario.queries,
        duration=duration,
        faults=FaultSchedule(events),
    )


def scenario_churn_hotspots(
    rows: int = 3,
    cols: int = 4,
    query_count: int = 24,
    seed: int = 20060330,
    duration: float = 40.0,
    crash_start: float = 12.0,
    crash_peers: Sequence[str] = ("SP1", "SP6"),
    crash_spacing: float = 6.0,
    downtime: float = 8.0,
) -> Scenario:
    """Multi-hotspot sky survey under rolling churn (bench PR7).

    The photon stream carries **three** hot spots, so selection-heavy
    subscriptions stay busy across disjoint sky regions and the
    certified shard partition gets genuinely unbalanced cells — the
    interesting regime for the sharded executor.  ``crash_peers`` then
    crash one after another (each rejoining ``downtime`` later),
    forcing repeated plan repair and shard re-certification mid-run.
    """
    from ..faults.schedule import staggered_crashes

    base = scenario_grid(rows, cols, query_count, seed=seed, duration=duration)
    config = PhotonStreamConfig(
        seed=seed,
        frequency=100.0,
        hot_spots=(
            HotSpot(ra=150.0, dec=2.0, sigma=2.0, weight=0.20, mean_energy=1.4),
            HotSpot(ra=186.0, dec=12.0, sigma=3.5, weight=0.15, mean_energy=0.9),
            HotSpot(ra=210.0, dec=-5.0, sigma=1.2, weight=0.12, mean_energy=2.1),
        ),
    )
    return Scenario(
        name=f"churn-hotspots-{rows}x{cols}",
        network_factory=base.network_factory,
        sources=[SourceSpec("photons", "T0", 100.0, config)],
        queries=base.queries,
        duration=duration,
        faults=staggered_crashes(
            crash_start, crash_peers, spacing=crash_spacing, downtime=downtime
        ),
    )


def scenario_drift(
    rows: int = 3,
    cols: int = 3,
    query_count: int = 12,
    seed: int = 20060331,
    duration: float = 30.0,
    rate_factor: float = 4.0,
) -> Scenario:
    """A grid scenario whose source rate jumps mid-run (bench PR8).

    The photon stream starts at its registered 100 items/s and steps to
    ``rate_factor`` times that at ``duration / 3`` — the registered
    catalog keeps advertising the base rate, so the planner's cost
    model is genuinely wrong for the last two thirds of the run.  A
    static plan keeps grinding the originally cheapest peers; the
    adaptive rebalancer sees the sustained CPU% surge in the epoch
    series and migrates the affected subscriptions off the hot
    peers.  No faults: the load shift alone drives the churn.
    """
    base = scenario_grid(rows, cols, query_count, seed=seed, duration=duration)
    config = PhotonStreamConfig(
        seed=seed,
        frequency=100.0,
        rate_profile=((duration / 3.0, 100.0 * rate_factor),),
    )
    return Scenario(
        name=f"drift-{rows}x{cols}",
        network_factory=base.network_factory,
        sources=[SourceSpec("photons", "T0", 100.0, config)],
        queries=base.queries,
        duration=duration,
    )


def scenario_hotspot_shift(
    rows: int = 3,
    cols: int = 4,
    query_count: int = 24,
    seed: int = 20060332,
    duration: float = 40.0,
) -> Scenario:
    """A sky survey whose hot spots rotate mid-run (bench PR8).

    The stream starts concentrated on one survey field and shifts to a
    disjoint field at ``duration / 2`` — selection-heavy subscriptions
    that were nearly idle suddenly match most items and vice versa, so
    the per-peer load distribution pivots without any change in the
    total rate.  Combined with a ``rate_profile`` step this is the
    hardest drift the rebalancer handles: both *where* and *how much*.
    """
    base = scenario_grid(rows, cols, query_count, seed=seed, duration=duration)
    early = (
        HotSpot(ra=150.0, dec=2.0, sigma=2.0, weight=0.35, mean_energy=1.4),
        HotSpot(ra=186.0, dec=12.0, sigma=3.5, weight=0.20, mean_energy=0.9),
    )
    late = (
        HotSpot(ra=210.0, dec=-5.0, sigma=1.2, weight=0.40, mean_energy=2.1),
        HotSpot(ra=112.0, dec=-33.0, sigma=3.0, weight=0.25, mean_energy=1.1),
    )
    config = PhotonStreamConfig(
        seed=seed,
        frequency=100.0,
        hot_spots=early,
        hot_spot_schedule=((duration / 2.0, late),),
        rate_profile=((duration / 2.0, 250.0),),
    )
    return Scenario(
        name=f"hotspot-shift-{rows}x{cols}",
        network_factory=base.network_factory,
        sources=[SourceSpec("photons", "T0", 100.0, config)],
        queries=base.queries,
        duration=duration,
    )


def scenario_two(seed: int = 20060327, query_count: int = 100) -> Scenario:
    """16 super-peers (4×4 grid), 2 data streams, 100 queries (Fig. 7)."""
    first = PhotonStreamConfig(seed=seed, frequency=100.0)
    second = PhotonStreamConfig(
        seed=seed + 1,
        frequency=80.0,
        strip=_SECOND_STRIP,
        hot_spots=(
            HotSpot(ra=112.0, dec=-33.0, sigma=3.0, weight=0.25, mean_energy=1.1),
            HotSpot(ra=148.0, dec=-47.0, sigma=1.5, weight=0.20, mean_energy=1.7),
        ),
    )
    rng_queries: List[QuerySpec] = []
    generators = {
        "photons": QueryTemplateGenerator(stream="photons", seed=seed),
        "photons2": QueryTemplateGenerator(stream="photons2", seed=seed + 7),
    }
    subscribers = tuple(f"U{i}" for i in range(8))
    import random

    chooser = random.Random(seed + 13)
    for index in range(query_count):
        stream = chooser.choice(("photons", "photons2"))
        generated = generators[stream].generate_one()
        rng_queries.append(
            QuerySpec(
                name=f"{'A' if stream == 'photons' else 'B'}{generated.name}",
                text=generated.text,
                subscriber_peer=subscribers[index % len(subscribers)],
                kind=generated.kind,
            )
        )
    return Scenario(
        name="scenario-2",
        network_factory=_grid_network,
        sources=[
            SourceSpec("photons", "T0", 100.0, first),
            SourceSpec("photons2", "T1", 80.0, second),
        ],
        queries=rng_queries,
        duration=60.0,
    )
