"""Synthetic ROSAT-All-Sky-Survey-like photon streams.

The paper evaluates on real RASS photon data obtained from MPE.  That
data is not available, so this module generates a statistically faithful
substitute (see DESIGN.md, Substitutions): a stream of ``photon`` XML
items conforming to :data:`repro.xmlkit.schema.PHOTON_SCHEMA` with

* celestial coordinates drawn from a mixture of a uniform sky background
  and Gaussian hot spots at the two supernova remnants the paper's
  example queries select (*vela* and *RX J0852.0-4622*);
* energies from a truncated exponential spectrum (soft X-ray band,
  0.1–2.4 keV, matching ROSAT's PSPC range);
* a strictly increasing ``det_time`` whose mean increment is the inverse
  of the configured stream frequency — this is the ordered reference
  element time-based windows require (Section 2);
* detector coordinates and pulse-height channel correlated with energy.

All randomness is drawn from a single seeded :class:`random.Random`, so
streams are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..xmlkit import Element, PHOTON_SCHEMA, Schema


@dataclass(frozen=True)
class SkyRegion:
    """A rectangular region of the sky in equatorial coordinates."""

    ra_min: float
    ra_max: float
    dec_min: float
    dec_max: float

    def contains(self, ra: float, dec: float) -> bool:
        return self.ra_min <= ra <= self.ra_max and self.dec_min <= dec <= self.dec_max

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.ra_min + self.ra_max) / 2, (self.dec_min + self.dec_max) / 2)


#: The vela supernova remnant region selected by Query 1.
VELA_REGION = SkyRegion(120.0, 138.0, -49.0, -40.0)

#: The RX J0852.0-4622 region selected by Query 2 (contained in vela).
RXJ_REGION = SkyRegion(130.5, 135.5, -48.0, -45.0)

#: Portion of the visible sky strip the simulated telescope scans.
SKY_STRIP = SkyRegion(100.0, 160.0, -60.0, -20.0)


@dataclass(frozen=True)
class HotSpot:
    """A Gaussian photon over-density, e.g. a supernova remnant."""

    ra: float
    dec: float
    sigma: float
    #: Relative probability that a photon originates from this spot.
    weight: float
    #: Mean energy of photons from this spot in keV.
    mean_energy: float


@dataclass
class PhotonStreamConfig:
    """Configuration of one synthetic photon stream.

    Parameters mirror the knobs the cost model consumes: ``frequency``
    is the average number of photons per (virtual) second, and the
    energy/coordinate distributions control operator selectivities.
    """

    seed: int = 20060326
    frequency: float = 100.0
    strip: SkyRegion = SKY_STRIP
    hot_spots: Tuple[HotSpot, ...] = (
        HotSpot(ra=129.0, dec=-44.5, sigma=4.0, weight=0.30, mean_energy=0.9),
        HotSpot(ra=133.0, dec=-46.5, sigma=1.2, weight=0.15, mean_energy=1.6),
    )
    #: Truncated-exponential energy spectrum bounds (ROSAT PSPC band).
    energy_min: float = 0.1
    energy_max: float = 2.4
    energy_scale: float = 0.8
    #: Jitter of det_time increments around the mean 1/frequency.
    time_jitter: float = 0.4
    #: Piecewise-constant rate drift: ``(start_time, frequency)`` steps
    #: in ascending virtual time.  Empty keeps ``frequency`` for the
    #: whole run; a step at time 0 overrides it from the start.  Drives
    #: ``scenario_drift`` — the *registered* (catalog) frequency stays
    #: the base ``frequency``, so a rate step is genuine model drift
    #: the planner did not see.
    rate_profile: Tuple[Tuple[float, float], ...] = ()
    #: Skew rotation: ``(start_time, hot_spots)`` steps replacing the
    #: active hot-spot mixture from that virtual time on (ascending).
    hot_spot_schedule: Tuple[Tuple[float, Tuple[HotSpot, ...]], ...] = ()
    schema: Schema = field(default_factory=lambda: PHOTON_SCHEMA)

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        self._check_spots(self.hot_spots)
        last_start = float("-inf")
        for start, frequency in self.rate_profile:
            if frequency <= 0:
                raise ValueError("rate_profile frequencies must be positive")
            if start <= last_start:
                raise ValueError("rate_profile must ascend in start time")
            last_start = start
        last_start = float("-inf")
        for start, spots in self.hot_spot_schedule:
            self._check_spots(spots)
            if start <= last_start:
                raise ValueError("hot_spot_schedule must ascend in start time")
            last_start = start

    @staticmethod
    def _check_spots(spots: Tuple[HotSpot, ...]) -> None:
        total_weight = sum(spot.weight for spot in spots)
        if total_weight > 1.0:
            raise ValueError("hot spot weights must sum to at most 1")

    def frequency_at(self, time: float) -> float:
        """The active photon rate at virtual ``time``."""
        frequency = self.frequency
        for start, stepped in self.rate_profile:
            if time >= start:
                frequency = stepped
            else:
                break
        return frequency

    def hot_spots_at(self, time: float) -> Tuple[HotSpot, ...]:
        """The active hot-spot mixture at virtual ``time``."""
        spots = self.hot_spots
        for start, stepped in self.hot_spot_schedule:
            if time >= start:
                spots = stepped
            else:
                break
        return spots


class PhotonGenerator:
    """Deterministic generator of photon :class:`Element` items.

    >>> gen = PhotonGenerator(PhotonStreamConfig(seed=1))
    >>> photon = gen.next_item()
    >>> photon.tag
    'photon'
    """

    def __init__(self, config: Optional[PhotonStreamConfig] = None) -> None:
        self.config = config or PhotonStreamConfig()
        self._rng = random.Random(self.config.seed)
        self._clock = 0.0
        self._emitted = 0

    @property
    def emitted(self) -> int:
        """Number of items produced so far."""
        return self._emitted

    @property
    def clock(self) -> float:
        """Virtual time of the last emitted photon."""
        return self._clock

    # ------------------------------------------------------------------
    # Item generation
    # ------------------------------------------------------------------
    def next_item(self) -> Element:
        """Generate the next photon in the stream."""
        rng = self._rng
        cfg = self.config

        mean_step = 1.0 / cfg.frequency_at(self._clock)
        jitter = cfg.time_jitter
        step = mean_step * (1.0 + rng.uniform(-jitter, jitter))
        self._clock += max(step, mean_step * 0.01)

        ra, dec, spot = self._draw_position()
        energy = self._draw_energy(spot)
        self._emitted += 1
        return self._build_photon(ra, dec, energy)

    def items(self, count: int) -> Iterator[Element]:
        """Yield the next ``count`` photons."""
        for _ in range(count):
            yield self.next_item()

    def take(self, count: int) -> List[Element]:
        """Materialize the next ``count`` photons as a list."""
        return list(self.items(count))

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def _draw_position(self) -> Tuple[float, float, Optional[HotSpot]]:
        rng = self._rng
        strip = self.config.strip
        roll = rng.random()
        cumulative = 0.0
        for spot in self.config.hot_spots_at(self._clock):
            cumulative += spot.weight
            if roll < cumulative:
                for _ in range(16):
                    ra = rng.gauss(spot.ra, spot.sigma)
                    dec = rng.gauss(spot.dec, spot.sigma)
                    if strip.contains(ra, dec):
                        return round(ra, 4), round(dec, 4), spot
                break  # pathological sigma: fall through to background
        ra = rng.uniform(strip.ra_min, strip.ra_max)
        dec = rng.uniform(strip.dec_min, strip.dec_max)
        return round(ra, 4), round(dec, 4), None

    def _draw_energy(self, spot: Optional[HotSpot]) -> float:
        rng = self._rng
        cfg = self.config
        scale = spot.mean_energy if spot is not None else cfg.energy_scale
        for _ in range(64):
            energy = rng.expovariate(1.0 / scale)
            if cfg.energy_min <= energy <= cfg.energy_max:
                return round(energy, 3)
        return round((cfg.energy_min + cfg.energy_max) / 2, 3)

    def _build_photon(self, ra: float, dec: float, energy: float) -> Element:
        rng = self._rng
        # Pulse-height channel roughly proportional to energy (PSPC has
        # 256 channels over the band).
        band = self.config.energy_max - self.config.energy_min
        phc = max(1, min(255, int(256 * (energy - self.config.energy_min) / band)
                         + rng.randint(-8, 8)))
        dx = rng.randint(0, 8191)
        dy = rng.randint(0, 8191)
        return Element(
            "photon",
            children=(
                Element("phc", text=phc),
                Element(
                    "coord",
                    children=(
                        Element(
                            "cel",
                            children=(
                                Element("ra", text=ra),
                                Element("dec", text=dec),
                            ),
                        ),
                        Element(
                            "det",
                            children=(
                                Element("dx", text=dx),
                                Element("dy", text=dy),
                            ),
                        ),
                    ),
                ),
                Element("en", text=energy),
                Element("det_time", text=round(self._clock, 4)),
            ),
        )


def average_item_size(config: Optional[PhotonStreamConfig] = None, sample: int = 200) -> float:
    """Average serialized photon size in bytes, from a fresh sample.

    Used to seed the statistics catalog; deterministic for a fixed
    config because the generator is seeded.
    """
    gen = PhotonGenerator(config)
    total = sum(item.serialized_size() for item in gen.items(sample))
    return total / sample
