"""Structural diff of element trees.

Used by tests and debugging sessions to pinpoint *where* two items
differ instead of staring at serialized strings.  Each difference is a
:class:`Difference` addressing the divergent node by a position-aware
path (``coord/cel[0]/ra[0]``) plus a human-readable reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .element import Element


@dataclass(frozen=True)
class Difference:
    """One structural difference between two trees."""

    path: str
    reason: str

    def __str__(self) -> str:
        return f"{self.path}: {self.reason}"


def diff_elements(expected: Element, actual: Element, _path: str = "") -> List[Difference]:
    """All structural differences between two trees (empty = equal).

    Children are compared pairwise in document order; surplus children
    on either side are reported individually.
    """
    path = _path or expected.tag
    differences: List[Difference] = []
    if expected.tag != actual.tag:
        differences.append(
            Difference(path, f"tag <{expected.tag}> != <{actual.tag}>")
        )
        return differences  # below this point paths would mislead
    if expected.text != actual.text:
        differences.append(
            Difference(path, f"text {expected.text!r} != {actual.text!r}")
        )
    common = min(len(expected.children), len(actual.children))
    for index in range(common):
        left, right = expected.children[index], actual.children[index]
        child_path = f"{path}/{left.tag}[{index}]"
        differences.extend(diff_elements(left, right, child_path))
    for index in range(common, len(expected.children)):
        missing = expected.children[index]
        differences.append(
            Difference(f"{path}/{missing.tag}[{index}]", "missing from actual")
        )
    for index in range(common, len(actual.children)):
        surplus = actual.children[index]
        differences.append(
            Difference(f"{path}/{surplus.tag}[{index}]", "unexpected in actual")
        )
    return differences


def assert_elements_equal(expected: Element, actual: Element) -> None:
    """Raise ``AssertionError`` listing every difference (test helper)."""
    differences = diff_elements(expected, actual)
    if differences:
        listing = "\n  ".join(str(d) for d in differences)
        raise AssertionError(f"elements differ:\n  {listing}")


def first_difference(expected: Element, actual: Element) -> str:
    """The first difference as text, or ``"equal"``."""
    differences = diff_elements(expected, actual)
    return str(differences[0]) if differences else "equal"
