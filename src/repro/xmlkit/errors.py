"""Exception hierarchy for the :mod:`repro.xmlkit` substrate.

The XML substrate deliberately keeps its own, narrow exception types so
that callers (the WXQuery engine, the workload generator, the benchmark
harness) can distinguish malformed input data from programming errors
without depending on :mod:`xml.etree` internals.
"""

from __future__ import annotations


class XmlError(Exception):
    """Base class for all errors raised by :mod:`repro.xmlkit`."""


class XmlParseError(XmlError):
    """Raised when a document or fragment is not well-formed.

    Attributes
    ----------
    position:
        Zero-based character offset into the input at which the error was
        detected.
    line:
        One-based line number of the error position.
    column:
        One-based column number of the error position.
    """

    def __init__(self, message: str, text: str, position: int) -> None:
        self.position = position
        prefix = text[:position]
        self.line = prefix.count("\n") + 1
        self.column = position - (prefix.rfind("\n") + 1) + 1
        super().__init__(f"{message} (line {self.line}, column {self.column})")


class XmlPathError(XmlError):
    """Raised for syntactically invalid element paths.

    Paths in this substrate are the restricted ``child``-axis-only paths
    of the paper (Section 2): no wildcards, no ``//``, no predicates.
    """


class XmlSchemaError(XmlError):
    """Raised when an element does not conform to a declared schema."""
