"""Element schemas (DTD tree structures) for stream item types.

The paper describes input streams by the tree structure of their DTD
(Section 1 shows the ``photon`` DTD).  A :class:`Schema` captures that
tree: which element paths exist below the item root, which are leaves,
and their expected occurrence.  Schemas feed three consumers:

* the workload generator, which synthesizes conforming items;
* the statistics catalog, which needs the set of projectable elements
  and their average sizes to evaluate the paper's ``size(p)`` formula;
* validation in tests (``Schema.validate``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .element import Element
from .errors import XmlSchemaError
from .path import Path


@dataclass(frozen=True)
class SchemaNode:
    """One element declaration in a schema tree."""

    tag: str
    children: Tuple["SchemaNode", ...] = ()
    #: Leaves carry typed values; interior nodes carry structure only.
    value_type: Optional[str] = None  # "int" | "decimal" | "string" | None

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class Schema:
    """Tree-structured schema of one stream item type.

    Parameters
    ----------
    root:
        Declaration of the item root element (e.g. ``photon``).
    stream_tag:
        Tag of the enclosing stream element (e.g. ``photons``); items on
        the wire are children of a conceptual element with this tag.
    """

    root: SchemaNode
    stream_tag: str
    _paths: Dict[Path, SchemaNode] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._index(self.root, ())

    def _index(self, node: SchemaNode, prefix: Tuple[str, ...]) -> None:
        for child in node.children:
            child_prefix = prefix + (child.tag,)
            self._paths[Path(child_prefix)] = child
            self._index(child, child_prefix)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def paths(self) -> List[Path]:
        """All relative paths below the item root, in document order."""
        return list(self._paths)

    def leaf_paths(self) -> List[Path]:
        """All relative paths that address value-carrying leaves."""
        return [p for p, node in self._paths.items() if node.is_leaf]

    def node_at(self, path: Path) -> SchemaNode:
        """Schema node addressed by ``path`` (relative to the item root)."""
        try:
            return self._paths[path]
        except KeyError:
            raise XmlSchemaError(
                f"path {path} does not exist in schema of <{self.root.tag}>"
            ) from None

    def has_path(self, path: Path) -> bool:
        return path in self._paths

    def subtree_leaves(self, path: Path) -> List[Path]:
        """Leaf paths contained in the subtree addressed by ``path``."""
        if path.is_empty():
            return self.leaf_paths()
        self.node_at(path)  # raises if unknown
        return [p for p in self.leaf_paths() if p.starts_with(path)]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, item: Element) -> None:
        """Check that ``item`` structurally conforms to this schema.

        Every element in the item must be declared, leaves must carry a
        value of the declared type, and interior nodes must not carry
        text.  Raises :class:`XmlSchemaError` on the first violation.
        """
        if item.tag != self.root.tag:
            raise XmlSchemaError(
                f"item root <{item.tag}> does not match schema root <{self.root.tag}>"
            )
        self._validate_node(item, self.root, item.tag)

    def _validate_node(self, elem: Element, decl: SchemaNode, where: str) -> None:
        if decl.is_leaf:
            if elem.children:
                raise XmlSchemaError(f"<{where}> must be a leaf")
            self._validate_value(elem.text, decl, where)
            return
        if elem.text is not None:
            raise XmlSchemaError(f"<{where}> must not carry text")
        declared = {child.tag: child for child in decl.children}
        for child in elem.children:
            child_decl = declared.get(child.tag)
            if child_decl is None:
                raise XmlSchemaError(f"undeclared element <{child.tag}> under <{where}>")
            self._validate_node(child, child_decl, f"{where}/{child.tag}")

    @staticmethod
    def _validate_value(text: Optional[str], decl: SchemaNode, where: str) -> None:
        if text is None:
            raise XmlSchemaError(f"leaf <{where}> carries no value")
        if decl.value_type == "int":
            try:
                int(text)
            except ValueError:
                raise XmlSchemaError(f"leaf <{where}> is not an int: {text!r}") from None
        elif decl.value_type == "decimal":
            try:
                float(text)
            except ValueError:
                raise XmlSchemaError(
                    f"leaf <{where}> is not a decimal: {text!r}"
                ) from None
        # "string" and None accept anything


def _leaf(tag: str, value_type: str) -> SchemaNode:
    return SchemaNode(tag, value_type=value_type)


#: The photon DTD from Section 1 of the paper::
#:
#:     photon
#:       phc | coord | en | det_time
#:       coord: cel (ra, dec) | det (dx, dy)
PHOTON_SCHEMA = Schema(
    root=SchemaNode(
        "photon",
        children=(
            _leaf("phc", "int"),
            SchemaNode(
                "coord",
                children=(
                    SchemaNode("cel", children=(_leaf("ra", "decimal"), _leaf("dec", "decimal"))),
                    SchemaNode("det", children=(_leaf("dx", "int"), _leaf("dy", "int"))),
                ),
            ),
            _leaf("en", "decimal"),
            _leaf("det_time", "decimal"),
        ),
    ),
    stream_tag="photons",
)
