"""A strict, dependency-free XML fragment parser.

The parser accepts the subset of XML that the stream substrate produces:
element-only content (text *or* children), entity references for the
five predefined entities, comments, and an optional XML declaration.
Attributes are parsed and rejected with a clear error, because the
paper's data model converts attributes to elements up front (Section 2).

The implementation is a single-pass recursive-descent scanner over the
input string; it reports precise line/column positions on error via
:class:`repro.xmlkit.errors.XmlParseError`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .element import Element
from .errors import XmlParseError

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_FORBIDDEN = set(" \t\r\n<>&/'\"=")


class _Scanner:
    """Cursor over the input text with error reporting helpers."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str, pos: Optional[int] = None) -> XmlParseError:
        return XmlParseError(message, self.text, self.pos if pos is None else pos)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def skip_whitespace(self) -> None:
        text = self.text
        pos = self.pos
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        self.pos = pos

    def skip_prolog(self) -> None:
        """Skip an optional XML declaration and any comments/whitespace."""
        self.skip_whitespace()
        if self.startswith("<?xml"):
            end = self.text.find("?>", self.pos)
            if end < 0:
                raise self.error("unterminated XML declaration")
            self.pos = end + 2
        self.skip_misc()

    def skip_misc(self) -> None:
        """Skip whitespace and comments between markup."""
        while True:
            self.skip_whitespace()
            if self.startswith("<!--"):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            else:
                return

    def read_name(self) -> str:
        start = self.pos
        text = self.text
        pos = self.pos
        while pos < len(text) and text[pos] not in _NAME_FORBIDDEN:
            pos += 1
        if pos == start:
            raise self.error("expected a name")
        self.pos = pos
        return text[start:pos]

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)


def _decode_text(raw: str, scanner: _Scanner, base: int) -> str:
    """Resolve entity and character references in text content."""
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i)
        if end < 0:
            raise scanner.error("unterminated entity reference", base + i)
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};", base + i)
        i = end + 1
    return "".join(out)


def _parse_element(scanner: _Scanner) -> Element:
    scanner.expect("<")
    tag = scanner.read_name()
    scanner.skip_whitespace()
    if scanner.peek() not in (">", "/"):
        raise scanner.error(
            f"attributes are not supported (element <{tag}>); "
            "convert attributes to child elements"
        )
    if scanner.startswith("/>"):
        scanner.pos += 2
        return Element(tag)
    scanner.expect(">")

    children: List[Element] = []
    text_parts: List[Tuple[int, str]] = []
    while True:
        if scanner.at_end():
            raise scanner.error(f"unexpected end of input inside <{tag}>")
        if scanner.startswith("<!--"):
            end = scanner.text.find("-->", scanner.pos)
            if end < 0:
                raise scanner.error("unterminated comment")
            scanner.pos = end + 3
            continue
        if scanner.startswith("</"):
            scanner.pos += 2
            close = scanner.read_name()
            if close != tag:
                raise scanner.error(f"mismatched close tag </{close}> for <{tag}>")
            scanner.skip_whitespace()
            scanner.expect(">")
            break
        if scanner.peek() == "<":
            children.append(_parse_element(scanner))
            continue
        start = scanner.pos
        next_markup = scanner.text.find("<", scanner.pos)
        if next_markup < 0:
            raise scanner.error(f"unexpected end of input inside <{tag}>")
        text_parts.append((start, scanner.text[start:next_markup]))
        scanner.pos = next_markup

    text = "".join(_decode_text(raw, scanner, base) for base, raw in text_parts)
    if children:
        if text.strip():
            raise scanner.error(
                f"mixed content in <{tag}> is outside the supported data model"
            )
        return Element(tag, children=children)
    if text_parts:
        return Element(tag, text=text)
    return Element(tag)


def parse(text: str) -> Element:
    """Parse a single XML document/fragment into an :class:`Element` tree.

    Raises
    ------
    XmlParseError
        If the input is not well-formed, uses attributes, or contains
        content after the root element.
    """
    scanner = _Scanner(text)
    scanner.skip_prolog()
    if scanner.at_end() or scanner.peek() != "<":
        raise scanner.error("expected a root element")
    root = _parse_element(scanner)
    scanner.skip_misc()
    if not scanner.at_end():
        raise scanner.error("content after the root element")
    return root


def parse_stream(text: str) -> List[Element]:
    """Parse a concatenation of fragments (one per stream item).

    Data streams on the wire are a sequence of serialized items with no
    enclosing root; this helper splits and parses them all.
    """
    scanner = _Scanner(text)
    scanner.skip_prolog()
    items: List[Element] = []
    while not scanner.at_end():
        if scanner.peek() != "<":
            raise scanner.error("expected an element")
        items.append(_parse_element(scanner))
        scanner.skip_misc()
    return items
