"""Lightweight XML substrate: element model, parser, serializer, paths, schemas.

This package replaces the XML machinery StreamGlobe took from its Java
environment.  Everything the rest of the reproduction needs from XML is
exported here:

>>> from repro.xmlkit import Element, parse, serialize, Path
>>> item = parse("<photon><en>1.5</en></photon>")
>>> Path("en").number(item)
1.5
>>> serialize(item)
'<photon><en>1.5</en></photon>'
"""

from .element import Element, element
from .errors import XmlError, XmlParseError, XmlPathError, XmlSchemaError
from .parser import parse, parse_stream
from .path import EMPTY_PATH, Path, parse_path
from .schema import PHOTON_SCHEMA, Schema, SchemaNode
from .serializer import pretty, serialize
from .diff import Difference, assert_elements_equal, diff_elements, first_difference
from .transform import prune_to_paths
from .columns import Shape, ShapeNode, shape_of

__all__ = [
    "Difference",
    "Shape",
    "ShapeNode",
    "shape_of",
    "Element",
    "element",
    "XmlError",
    "XmlParseError",
    "XmlPathError",
    "XmlSchemaError",
    "parse",
    "parse_stream",
    "Path",
    "parse_path",
    "EMPTY_PATH",
    "Schema",
    "SchemaNode",
    "PHOTON_SCHEMA",
    "pretty",
    "assert_elements_equal",
    "diff_elements",
    "first_difference",
    "prune_to_paths",
    "serialize",
]
