"""Structural tree transforms shared by the engine and the cost model.

:func:`prune_to_paths` implements projection at the data level: keep
only the parts of an item that lie *on or below* a set of retained
paths, together with the interior elements needed to reach them.  Both
the projection operator (:mod:`repro.engine.project`) and the measured
size estimator (:mod:`repro.costmodel.statistics`) use it, so estimated
and executed projections agree by construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .element import Element
from .path import Path


def prune_to_paths(root: Element, keep: Iterable[Path]) -> Optional[Element]:
    """Return a copy of ``root`` pruned to the ``keep`` paths.

    A path retains its whole subtree.  Paths are relative to ``root``
    (i.e. they do not include ``root.tag``).  Returns ``None`` when
    nothing is retained.
    """
    keep_steps = [tuple(path.steps) for path in keep]
    if any(not steps for steps in keep_steps):
        return root.copy()  # the empty path keeps the whole item
    return _prune(root, keep_steps)


def _prune(node: Element, keep: List[Tuple[str, ...]]) -> Optional[Element]:
    children: List[Element] = []
    for child in node.children:
        descend: List[Tuple[str, ...]] = []
        keep_whole = False
        for steps in keep:
            if steps[0] != child.tag:
                continue
            if len(steps) == 1:
                keep_whole = True
                break
            descend.append(steps[1:])
        if keep_whole:
            children.append(child.copy())
        elif descend:
            pruned = _prune(child, descend)
            if pruned is not None:
                children.append(pruned)
    if not children:
        return None
    return Element(node.tag, children=children)
