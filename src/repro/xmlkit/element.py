"""A lightweight XML element model.

The paper's data model (Section 2) restricts itself to elements: XML
attributes "can always be converted into corresponding elements", so the
model here stores a tag, an optional text value, and a list of child
elements.  This is intentionally much smaller than a DOM: the stream
engine creates and destroys millions of elements while pumping photon
streams through operator pipelines, and the traffic accounting needs a
precise, cheap serialized-size computation.

The public entry points are :class:`Element` and the convenience
constructor :func:`element`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

Scalar = Union[str, int, float]


def _coerce_text(value: Optional[Scalar]) -> Optional[str]:
    """Normalize a scalar into the canonical text representation.

    Integers keep their plain decimal form; floats use ``repr`` so that
    round-tripping through serialization is lossless for the finite
    decimal values the paper's predicates allow.
    """
    if value is None:
        return None
    if isinstance(value, str):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("boolean element text is not part of the data model")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr() gives the shortest string that round-trips; strip a
        # trailing ".0" is deliberately NOT done so typed-ness survives.
        return repr(value)
    raise TypeError(f"unsupported text type: {type(value)!r}")


class Element:
    """A single XML element: tag, optional text, ordered children.

    Mixed content (text interleaved with children) is not part of the
    paper's data model and is rejected: an element carries either text or
    children, never both.

    Parameters
    ----------
    tag:
        The element name.  Must be a valid XML name (checked loosely:
        non-empty, no whitespace or markup characters).
    text:
        Optional scalar content.  Numbers are canonicalized to strings.
    children:
        Optional iterable of child :class:`Element` objects.
    """

    __slots__ = ("tag", "text", "children")

    def __init__(
        self,
        tag: str,
        text: Optional[Scalar] = None,
        children: Optional[Iterable["Element"]] = None,
    ) -> None:
        if not tag or any(c in tag for c in " \t\n\r<>&/'\""):
            raise ValueError(f"invalid element tag: {tag!r}")
        self.tag = tag
        self.text = _coerce_text(text)
        self.children: List[Element] = list(children) if children else []
        if self.text is not None and self.children:
            raise ValueError(
                f"element <{tag}> cannot carry both text and children "
                "(mixed content is outside the paper's data model)"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, child: "Element") -> None:
        """Add ``child`` as the last child of this element."""
        if self.text is not None:
            raise ValueError(f"element <{self.tag}> has text; cannot add children")
        self.children.append(child)

    def extend(self, children: Iterable["Element"]) -> None:
        """Append every element of ``children`` in order."""
        for child in children:
            self.append(child)

    def copy(self) -> "Element":
        """Return a deep copy of this subtree."""
        return Element(self.tag, self.text, (c.copy() for c in self.children))

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def child(self, tag: str) -> Optional["Element"]:
        """Return the first child with the given tag, or ``None``."""
        for c in self.children:
            if c.tag == tag:
                return c
        return None

    def find(self, steps: Sequence[str]) -> Optional["Element"]:
        """Follow a child-axis path given as a sequence of tag names.

        Returns the first element reached, or ``None`` when any step has
        no matching child.  An empty path returns ``self``.
        """
        node: Optional[Element] = self
        for step in steps:
            if node is None:
                return None
            node = node.child(step)
        return node

    def find_all(self, steps: Sequence[str]) -> List["Element"]:
        """Return every element reachable via the child-axis path."""
        frontier = [self]
        for step in steps:
            frontier = [c for node in frontier for c in node.children if c.tag == step]
            if not frontier:
                return []
        return frontier

    def value(self, steps: Sequence[str]) -> Optional[str]:
        """Return the text of the first element on ``steps``, or ``None``."""
        node = self.find(steps)
        return None if node is None else node.text

    def number(self, steps: Sequence[str]) -> Optional[float]:
        """Return the numeric value of the first element on ``steps``.

        Returns ``None`` when the path does not resolve or the text is
        not a number.
        """
        text = self.value(steps)
        if text is None:
            return None
        try:
            return float(text)
        except ValueError:
            return None

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    # ------------------------------------------------------------------
    # Size accounting (drives the traffic measurements)
    # ------------------------------------------------------------------
    def serialized_size(self) -> int:
        """Number of bytes of the canonical serialization of this subtree.

        Matches :func:`repro.xmlkit.serializer.serialize` with default
        options (compact, UTF-8) without building the string.
        """
        tag_len = len(self.tag.encode("utf-8"))
        if not self.children and self.text is None:
            # "<t/>"
            return tag_len + 3
        size = 2 * tag_len + 5  # "<t>" + "</t>"
        if self.text is not None:
            size += len(_escape_text(self.text).encode("utf-8"))
        for child in self.children:
            size += child.serialized_size()
        return size

    # ------------------------------------------------------------------
    # Equality and display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.text == other.text
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.tag, self.text, tuple(self.children)))

    def __repr__(self) -> str:
        if self.text is not None:
            return f"Element({self.tag!r}, text={self.text!r})"
        if self.children:
            return f"Element({self.tag!r}, children={len(self.children)})"
        return f"Element({self.tag!r})"


def _escape_text(text: str) -> str:
    """Escape the three characters that must be escaped in text content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def element(tag: str, *children: Element, text: Optional[Scalar] = None) -> Element:
    """Convenience constructor: ``element("a", element("b"), ...)``."""
    return Element(tag, text=text, children=children)
