"""A lightweight XML element model.

The paper's data model (Section 2) restricts itself to elements: XML
attributes "can always be converted into corresponding elements", so the
model here stores a tag, an optional text value, and a list of child
elements.  This is intentionally much smaller than a DOM: the stream
engine creates and destroys millions of elements while pumping photon
streams through operator pipelines, and the traffic accounting needs a
precise, cheap serialized-size computation.

The public entry points are :class:`Element` and the convenience
constructor :func:`element`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

Scalar = Union[str, int, float]


def _coerce_text(value: Optional[Scalar]) -> Optional[str]:
    """Normalize a scalar into the canonical text representation.

    Integers keep their plain decimal form; floats use ``repr`` so that
    round-tripping through serialization is lossless for the finite
    decimal values the paper's predicates allow.
    """
    if value is None:
        return None
    if isinstance(value, str):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("boolean element text is not part of the data model")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr() gives the shortest string that round-trips; strip a
        # trailing ".0" is deliberately NOT done so typed-ness survives.
        return repr(value)
    raise TypeError(f"unsupported text type: {type(value)!r}")


_INVALID_TAG_CHARS = frozenset(" \t\n\r<>&/'\"")
#: Tags seen and validated once; stream tags repeat millions of times.
_VALIDATED_TAGS: set = set()


class Element:
    """A single XML element: tag, optional text, ordered children.

    Mixed content (text interleaved with children) is not part of the
    paper's data model and is rejected: an element carries either text or
    children, never both.

    Parameters
    ----------
    tag:
        The element name.  Must be a valid XML name (checked loosely:
        non-empty, no whitespace or markup characters).
    text:
        Optional scalar content.  Numbers are canonicalized to strings.
    children:
        Optional iterable of child :class:`Element` objects.
    """

    __slots__ = ("tag", "text", "children", "_size")

    def __init__(
        self,
        tag: str,
        text: Optional[Scalar] = None,
        children: Optional[Iterable["Element"]] = None,
    ) -> None:
        if tag not in _VALIDATED_TAGS:
            if not tag or _INVALID_TAG_CHARS.intersection(tag):
                raise ValueError(f"invalid element tag: {tag!r}")
            _VALIDATED_TAGS.add(tag)
        self.tag = tag
        self.text = text if type(text) is str or text is None else _coerce_text(text)
        self.children: List[Element] = list(children) if children else []
        self._size: Optional[int] = None
        if self.text is not None and self.children:
            raise ValueError(
                f"element <{tag}> cannot carry both text and children "
                "(mixed content is outside the paper's data model)"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, child: "Element") -> None:
        """Add ``child`` as the last child of this element."""
        if self._size is not None:
            raise ValueError(f"element <{self.tag}> is frozen; cannot add children")
        if self.text is not None:
            raise ValueError(f"element <{self.tag}> has text; cannot add children")
        self.children.append(child)

    def extend(self, children: Iterable["Element"]) -> None:
        """Append every element of ``children`` in order."""
        for child in children:
            self.append(child)

    def copy(self) -> "Element":
        """Return a deep copy of this subtree (unfrozen).

        Bypasses ``__init__``: the source element already passed tag
        validation and text coercion, so the clone copies slots directly.
        """
        clone = Element.__new__(Element)
        clone.tag = self.tag
        clone.text = self.text
        clone.children = [c.copy() for c in self.children]
        clone._size = None
        return clone

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def child(self, tag: str) -> Optional["Element"]:
        """Return the first child with the given tag, or ``None``."""
        for c in self.children:
            if c.tag == tag:
                return c
        return None

    def find(self, steps: Sequence[str]) -> Optional["Element"]:
        """Follow a child-axis path given as a sequence of tag names.

        Returns the first element reached, or ``None`` when any step has
        no matching child.  An empty path returns ``self``.
        """
        node: Optional[Element] = self
        for step in steps:
            for candidate in node.children:
                if candidate.tag == step:
                    node = candidate
                    break
            else:
                return None
        return node

    def find_all(self, steps: Sequence[str]) -> List["Element"]:
        """Return every element reachable via the child-axis path."""
        frontier = [self]
        for step in steps:
            frontier = [c for node in frontier for c in node.children if c.tag == step]
            if not frontier:
                return []
        return frontier

    def value(self, steps: Sequence[str]) -> Optional[str]:
        """Return the text of the first element on ``steps``, or ``None``."""
        node = self.find(steps)
        return None if node is None else node.text

    def number(self, steps: Sequence[str]) -> Optional[float]:
        """Return the numeric value of the first element on ``steps``.

        Returns ``None`` when the path does not resolve or the text is
        not a number.
        """
        node = self.find(steps)
        if node is None or node.text is None:
            return None
        try:
            return float(node.text)
        except ValueError:
            return None

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    # ------------------------------------------------------------------
    # Size accounting (drives the traffic measurements)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """``True`` once :meth:`freeze` pinned this node's size."""
        return self._size is not None

    def freeze(self) -> "Element":
        """Pin this subtree's serialized size and make it immutable.

        The streaming executor freezes every item at ingest and every
        operator output before transport accounting, so relays and
        multi-hop routes charge bytes without re-walking subtrees.  The
        cache can only be trusted on an immutable tree — a frozen
        element rejects :meth:`append`/:meth:`extend` — which is why
        freezing is explicit rather than implicit on first size query.
        Freezing is idempotent and returns ``self`` for chaining;
        already-frozen children are reused without descending into them.
        """
        if self._size is None:
            self._size = self._compute_size()
        return self

    def _compute_size(self) -> int:
        tag_len = len(self.tag.encode("utf-8"))
        if not self.children and self.text is None:
            # "<t/>"
            return tag_len + 3
        size = 2 * tag_len + 5  # "<t>" + "</t>"
        if self.text is not None:
            size += len(_escape_text(self.text).encode("utf-8"))
        for child in self.children:
            child_size = child._size
            if child_size is None:
                child_size = child._compute_size()
                child._size = child_size
            size += child_size
        return size

    def serialized_size(self) -> int:
        """Number of bytes of the canonical serialization of this subtree.

        Matches :func:`repro.xmlkit.serializer.serialize` with default
        options (compact, UTF-8) without building the string.  Frozen
        subtrees answer from their pinned size; unfrozen ones walk the
        tree (reusing any frozen descendants) without caching, since an
        unfrozen node may still be mutated.
        """
        if self._size is not None:
            return self._size
        tag_len = len(self.tag.encode("utf-8"))
        if not self.children and self.text is None:
            # "<t/>"
            return tag_len + 3
        size = 2 * tag_len + 5  # "<t>" + "</t>"
        if self.text is not None:
            size += len(_escape_text(self.text).encode("utf-8"))
        for child in self.children:
            size += child.serialized_size()
        return size

    # ------------------------------------------------------------------
    # Pickling (the sharded executor ships item batches across worker
    # process boundaries)
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple:
        """Compact slot state; keeps the pinned size of frozen trees so
        transport accounting on the receiving side stays identical."""
        return (self.tag, self.text, self.children, self._size)

    def __setstate__(self, state: tuple) -> None:
        self.tag, self.text, self.children, self._size = state

    # ------------------------------------------------------------------
    # Equality and display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.text == other.text
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.tag, self.text, tuple(self.children)))

    def __repr__(self) -> str:
        if self.text is not None:
            return f"Element({self.tag!r}, text={self.text!r})"
        if self.children:
            return f"Element({self.tag!r}, children={len(self.children)})"
        return f"Element({self.tag!r})"


def _escape_text(text: str) -> str:
    """Escape the three characters that must be escaped in text content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def element(tag: str, *children: Element, text: Optional[Scalar] = None) -> Element:
    """Convenience constructor: ``element("a", element("b"), ...)``."""
    return Element(tag, text=text, children=children)
