"""Canonical serialization for :class:`~repro.xmlkit.element.Element`.

Two forms are provided:

* :func:`serialize` — the compact canonical form used on the (simulated)
  wire.  ``Element.serialized_size`` is defined against this form, so
  ``len(serialize(e).encode()) == e.serialized_size()`` always holds;
  this identity is enforced by a property-based test.
* :func:`pretty` — an indented, human-readable form used by examples and
  debugging output.
"""

from __future__ import annotations

from typing import List

from .element import Element, _escape_text


def serialize(root: Element) -> str:
    """Return the compact canonical serialization of ``root``."""
    parts: List[str] = []
    _write(root, parts)
    return "".join(parts)


def _write(node: Element, parts: List[str]) -> None:
    if not node.children and node.text is None:
        parts.append(f"<{node.tag}/>")
        return
    parts.append(f"<{node.tag}>")
    if node.text is not None:
        parts.append(_escape_text(node.text))
    for child in node.children:
        _write(child, parts)
    parts.append(f"</{node.tag}>")


def pretty(root: Element, indent: str = "  ") -> str:
    """Return an indented serialization of ``root`` for display."""
    parts: List[str] = []
    _write_pretty(root, parts, indent, 0)
    return "\n".join(parts)


def _write_pretty(node: Element, parts: List[str], indent: str, depth: int) -> None:
    pad = indent * depth
    if not node.children and node.text is None:
        parts.append(f"{pad}<{node.tag}/>")
        return
    if node.text is not None:
        parts.append(f"{pad}<{node.tag}>{_escape_text(node.text)}</{node.tag}>")
        return
    parts.append(f"{pad}<{node.tag}>")
    for child in node.children:
        _write_pretty(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{node.tag}>")
