"""Schema sniffing and struct-of-arrays shape compilation.

The streaming engine's hot path (see :mod:`repro.engine.columnar`)
encodes *regular* item batches — batches where every item has the exact
same nested element structure, like the photon workload — into one flat
column per leaf element.  This module owns the shape machinery:

* :func:`shape_of` sniffs an item's :class:`Shape` (the nested
  ``(tag, children)`` skeleton) and interns it in a bounded registry so
  identical batches share one compiled artifact set;
* each shape carries a code-generated **validator** (exact structural
  match via direct child indexing, no tag scans) and per-leaf
  **extractors** (``elements -> text column``);
* :meth:`ShapeNode.resolve` maps child-axis navigation steps to shape
  nodes (column lookups), and :meth:`ShapeNode.prune` mirrors
  :func:`repro.xmlkit.transform.prune_to_paths` on the shape itself —
  projection becomes a column-set change, no trees are built;
* :func:`escaped_text_len` reproduces the byte accounting of
  :meth:`Element.serialized_size` exactly, so column-computed sizes are
  integer-identical to the tree path's frozen sizes.

Everything here is deterministic: shapes are interned by value, columns
are numbered in document order, and code generation depends only on the
shape signature.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .element import Element, _escape_text

#: Nested shape signature: ``(tag, (child signatures...))``.
Signature = Tuple[str, tuple]

#: Sniffing limits: shapes beyond these bounds are never columnarized
#: (the tree path handles them; deep/wide documents don't batch well).
MAX_SHAPE_NODES = 64
MAX_SHAPE_DEPTH = 12

#: Registry cap: distinct shapes beyond this bypass encoding instead of
#: evicting (eviction would churn the per-shape compiled artifacts that
#: operators cache by node identity).
MAX_SHAPES = 256

_MISSING = object()


def escaped_text_len(text: str) -> int:
    """Byte length of ``text`` after XML escaping, UTF-8 encoded.

    Must match ``len(_escape_text(text).encode("utf-8"))`` — the ASCII
    fast path counts the three escaped characters instead of building
    the escaped string.
    """
    if text.isascii():
        return (
            len(text)
            + 4 * text.count("&")
            + 3 * text.count("<")
            + 3 * text.count(">")
        )
    return len(_escape_text(text).encode("utf-8"))


def leaf_size(text: Optional[str], tag_len: int) -> int:
    """Serialized size of a childless element, mirroring
    :meth:`Element.serialized_size`: ``<t/>`` when empty, else
    ``<t>...</t>`` with escaped UTF-8 text."""
    if text is None:
        return tag_len + 3
    return 2 * tag_len + 5 + escaped_text_len(text)


class ShapeNode:
    """One node of a (possibly pruned) shape tree.

    Leaves (no children) own a ``column`` id into the batch store's
    text columns; interior nodes never carry text (the element model
    forbids mixed content).  Per-node caches — navigation resolution,
    shape pruning, size constants, compiled decoders — live on the node
    so every batch with the same shape reuses them.
    """

    __slots__ = (
        "tag",
        "tag_len",
        "children",
        "column",
        "_resolve_cache",
        "_prune_cache",
        "_size_info",
        "_decoder",
    )

    def __init__(
        self, tag: str, children: Tuple["ShapeNode", ...], column: Optional[int]
    ) -> None:
        self.tag = tag
        self.tag_len = len(tag.encode("utf-8"))
        self.children = children
        self.column = column
        self._resolve_cache: Dict[Tuple[str, ...], Optional["ShapeNode"]] = {}
        self._prune_cache: Dict[tuple, Optional["ShapeNode"]] = {}
        self._size_info: Optional[Tuple[int, Tuple["ShapeNode", ...]]] = None
        self._decoder: Optional[Tuple[Callable, Tuple[int, ...]]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.column is not None else "interior"
        return f"<ShapeNode {self.tag!r} {kind} children={len(self.children)}>"

    # ------------------------------------------------------------------
    # Navigation (the columnar analogue of Element.find)
    # ------------------------------------------------------------------
    def resolve(self, steps: Tuple[str, ...]) -> Optional["ShapeNode"]:
        """Follow child-axis steps, first matching child per step —
        exactly :meth:`Element.find` semantics, cached per step tuple."""
        cached = self._resolve_cache.get(steps, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        node: Optional[ShapeNode] = self
        for step in steps:
            assert node is not None
            for child in node.children:
                if child.tag == step:
                    node = child
                    break
            else:
                node = None
                break
        self._resolve_cache[steps] = node
        return node

    # ------------------------------------------------------------------
    # Projection (the columnar analogue of prune_to_paths)
    # ------------------------------------------------------------------
    def prune(self, keep: Tuple[Tuple[str, ...], ...]) -> Optional["ShapeNode"]:
        """Prune this shape to the retained paths.

        Mirrors :func:`repro.xmlkit.transform.prune_to_paths` node for
        node: a matched path keeps its whole subtree (the original
        nodes, columns included), interior nodes survive only when a
        descendant is retained, and ``None`` means the projected item
        is dropped entirely.  Pruning is structural, so one answer per
        (shape, keep) pair covers every row of every batch; results are
        cached and shared so downstream caches key off node identity.
        """
        cached = self._prune_cache.get(keep, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        if any(not steps for steps in keep):
            result: Optional[ShapeNode] = self  # empty path keeps the whole item
        else:
            result = _prune_shape(self, list(keep))
        self._prune_cache[keep] = result
        return result

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_info(self) -> Tuple[int, Tuple["ShapeNode", ...]]:
        """``(static_interior_bytes, leaf_nodes)`` for this shape.

        Interior nodes contribute a content-independent ``2·|tag|+5``
        (``<t>`` + ``</t>``); leaves contribute per row via their text
        column.  Together they reproduce ``Element.serialized_size``.
        """
        if self._size_info is None:
            static = 0
            leaves: List[ShapeNode] = []
            stack: List[ShapeNode] = [self]
            while stack:
                node = stack.pop()
                if node.column is not None:
                    leaves.append(node)
                else:
                    static += 2 * node.tag_len + 5
                    stack.extend(reversed(node.children))
            self._size_info = (static, tuple(leaves))
        return self._size_info

    # ------------------------------------------------------------------
    # Decoding (rebuild Element trees from columns)
    # ------------------------------------------------------------------
    def decoder(self) -> Tuple[Callable, Tuple[int, ...]]:
        """``(build, column_ids)``: ``build(i, *columns)`` rebuilds row
        ``i``'s element tree, where ``columns`` are the text columns of
        ``column_ids`` in order.  Compiled once per shape node."""
        if self._decoder is None:
            order: List[int] = []
            expr = _decoder_expr(self, order)
            source = f"def _build(i, {', '.join(f't{k}' for k in range(len(order)))}):\n"
            source += f"    return {expr}\n"
            namespace: Dict[str, object] = {"E": Element}
            exec(compile(source, "<shape-decoder>", "exec"), namespace)  # noqa: S102
            self._decoder = (namespace["_build"], tuple(order))  # type: ignore[assignment]
        return self._decoder


def _prune_shape(
    node: ShapeNode, keep: List[Tuple[str, ...]]
) -> Optional[ShapeNode]:
    children: List[ShapeNode] = []
    for child in node.children:
        descend: List[Tuple[str, ...]] = []
        keep_whole = False
        for steps in keep:
            if steps[0] != child.tag:
                continue
            if len(steps) == 1:
                keep_whole = True
                break
            descend.append(steps[1:])
        if keep_whole:
            children.append(child)  # whole subtree: share the original nodes
        elif descend:
            pruned = _prune_shape(child, descend)
            if pruned is not None:
                children.append(pruned)
    if not children:
        return None
    return ShapeNode(node.tag, tuple(children), None)


def _decoder_expr(node: ShapeNode, order: List[int]) -> str:
    if node.column is not None:
        index = len(order)
        order.append(node.column)
        return f"E({node.tag!r}, t{index}[i])"
    parts = ", ".join(_decoder_expr(child, order) for child in node.children)
    return f"E({node.tag!r}, None, ({parts},))"


# ----------------------------------------------------------------------
# Shape sniffing and the interned registry
# ----------------------------------------------------------------------
class Shape:
    """An interned shape: the node tree plus its compiled artifacts."""

    __slots__ = ("root", "signature", "validator", "column_paths", "_extractors")

    def __init__(
        self,
        root: ShapeNode,
        signature: Signature,
        validator: Callable[[Element], bool],
        column_paths: Tuple[Tuple[int, ...], ...],
    ) -> None:
        self.root = root
        self.signature = signature
        self.validator = validator
        #: Child-index chains from the item root, one per column id.
        self.column_paths = column_paths
        self._extractors: Dict[int, Callable[[Sequence[Element]], list]] = {}

    @property
    def column_count(self) -> int:
        return len(self.column_paths)

    def extractor(self, column: int) -> Callable[[Sequence[Element]], list]:
        """Compiled whole-column text extractor for one leaf."""
        extract = self._extractors.get(column)
        if extract is None:
            chain = "".join(f".children[{i}]" for i in self.column_paths[column])
            source = (
                "def _extract(elements):\n"
                f"    return [e{chain}.text for e in elements]\n"
            )
            namespace: Dict[str, object] = {}
            exec(compile(source, "<shape-extractor>", "exec"), namespace)  # noqa: S102
            extract = namespace["_extract"]  # type: ignore[assignment]
            self._extractors[column] = extract
        return extract


def _signature_of(element: Element) -> Optional[Signature]:
    """The nested ``(tag, children)`` signature, or ``None`` when the
    item exceeds the sniffing bounds."""
    budget = MAX_SHAPE_NODES

    def walk(node: Element, depth: int) -> Optional[Signature]:
        nonlocal budget
        budget -= 1
        if budget < 0 or depth > MAX_SHAPE_DEPTH:
            return None
        children: List[Signature] = []
        for child in node.children:
            child_sig = walk(child, depth + 1)
            if child_sig is None:
                return None
            children.append(child_sig)
        return (node.tag, tuple(children))

    return walk(element, 0)


def _build_nodes(
    signature: Signature, paths: List[Tuple[int, ...]], prefix: Tuple[int, ...]
) -> ShapeNode:
    tag, child_sigs = signature
    if not child_sigs:
        column = len(paths)
        paths.append(prefix)
        node = ShapeNode(tag, (), column)
        return node
    children = tuple(
        _build_nodes(child_sig, paths, prefix + (index,))
        for index, child_sig in enumerate(child_sigs)
    )
    return ShapeNode(tag, children, None)


def _compile_validator(signature: Signature) -> Callable[[Element], bool]:
    """Generate an exact structural matcher with direct child indexing.

    The generated function checks tags and child counts at every level
    and requires leaves to be childless — any mismatch means the item
    does not share the batch shape and the batch falls back to trees.
    """
    lines = ["def _validate(e0):"]
    counter = 0

    def emit(var: str, sig: Signature) -> None:
        nonlocal counter
        tag, child_sigs = sig
        lines.append(f"    if {var}.tag != {tag!r}: return False")
        if not child_sigs:
            lines.append(f"    if {var}.children: return False")
            return
        counter += 1
        kids = f"c{counter}"
        lines.append(f"    {kids} = {var}.children")
        lines.append(f"    if len({kids}) != {len(child_sigs)}: return False")
        for index, child_sig in enumerate(child_sigs):
            counter += 1
            child_var = f"e{counter}"
            lines.append(f"    {child_var} = {kids}[{index}]")
            emit(child_var, child_sig)

    emit("e0", signature)
    lines.append("    return True")
    namespace: Dict[str, object] = {}
    exec(compile("\n".join(lines), "<shape-validator>", "exec"), namespace)  # noqa: S102
    return namespace["_validate"]  # type: ignore[return-value]


_REGISTRY: Dict[Signature, Shape] = {}


def shape_of(element: Element) -> Optional[Shape]:
    """Sniff and intern ``element``'s shape.

    Returns ``None`` when the item is out of bounds or the registry is
    full — both mean "stay on the tree path".  Interning by signature
    guarantees that every batch of the same structure shares one
    :class:`Shape` (and therefore one set of compiled artifacts and one
    set of cache-keyed :class:`ShapeNode` identities).
    """
    signature = _signature_of(element)
    if signature is None:
        return None
    shape = _REGISTRY.get(signature)
    if shape is None:
        if len(_REGISTRY) >= MAX_SHAPES:
            return None
        paths: List[Tuple[int, ...]] = []
        root = _build_nodes(signature, paths, ())
        shape = Shape(root, signature, _compile_validator(signature), tuple(paths))
        _REGISTRY[signature] = shape
    return shape


def registry_size() -> int:
    """Number of interned shapes (telemetry/testing)."""
    return len(_REGISTRY)
