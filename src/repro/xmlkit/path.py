"""Restricted element paths.

The paper (Section 2) only allows relative paths ``π`` that employ the
child axis: no wildcards, no ``//``, no embedded predicates.  (Predicates
inside a path step, written ``π̄`` in the paper, are handled one level up
by the WXQuery parser, which splits them off into selection conditions.)

:class:`Path` is an immutable, hashable tuple of steps.  Paths are used
pervasively: as projection elements in properties, as node labels in
predicate graphs, and as navigation programs in the stream engine, so
they are kept tiny and cheap to compare.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple, Union

from .element import Element
from .errors import XmlPathError


class Path:
    """An immutable child-axis-only element path like ``coord/cel/ra``."""

    __slots__ = ("steps",)

    def __init__(self, steps: Union[str, Sequence[str]]) -> None:
        if isinstance(steps, str):
            steps = parse_path(steps).steps
        steps_tuple: Tuple[str, ...] = tuple(steps)
        for step in steps_tuple:
            if not step or any(c in step for c in " \t\n\r<>&/'\"[]*"):
                raise XmlPathError(f"invalid path step: {step!r}")
        object.__setattr__(self, "steps", steps_tuple)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Path is immutable")

    def __reduce__(self) -> tuple:
        """Pickle as the validated step tuple (immutability means the
        default slot-state protocol would trip ``__setattr__``)."""
        return (Path, (self.steps,))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __truediv__(self, other: Union["Path", str]) -> "Path":
        """Concatenate: ``Path("coord") / "cel" == Path("coord/cel")``."""
        if isinstance(other, str):
            other = Path(other)
        return Path(self.steps + other.steps)

    def starts_with(self, prefix: "Path") -> bool:
        """``True`` when ``prefix`` is a (non-strict) prefix of this path."""
        return self.steps[: len(prefix.steps)] == prefix.steps

    def relative_to(self, prefix: "Path") -> "Path":
        """Strip ``prefix``; raises :class:`XmlPathError` if not a prefix."""
        if not self.starts_with(prefix):
            raise XmlPathError(f"{self} does not start with {prefix}")
        return Path(self.steps[len(prefix.steps) :])

    @property
    def leaf(self) -> str:
        """The final step (the referenced element's tag)."""
        if not self.steps:
            raise XmlPathError("the empty path has no leaf")
        return self.steps[-1]

    @property
    def parent(self) -> "Path":
        """The path without its final step."""
        if not self.steps:
            raise XmlPathError("the empty path has no parent")
        return Path(self.steps[:-1])

    def is_empty(self) -> bool:
        return not self.steps

    # ------------------------------------------------------------------
    # Evaluation against an element tree
    # ------------------------------------------------------------------
    def first(self, root: Element) -> Optional[Element]:
        """The first element reached from ``root``, or ``None``."""
        return root.find(self.steps)

    def all(self, root: Element) -> Sequence[Element]:
        """All elements reached from ``root`` along this path."""
        return root.find_all(self.steps)

    def number(self, root: Element) -> Optional[float]:
        """Numeric value of the first reached element, or ``None``."""
        return root.number(self.steps)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[str]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.steps == other.steps

    def __lt__(self, other: "Path") -> bool:
        return self.steps < other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __str__(self) -> str:
        return "/".join(self.steps)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"


EMPTY_PATH = Path(())


def parse_path(text: str) -> Path:
    """Parse ``"a/b/c"`` into a :class:`Path`.

    Leading/trailing slashes, wildcards, descendant steps, and embedded
    predicates are rejected — those are outside the paper's ``π``.
    """
    text = text.strip()
    if not text:
        return EMPTY_PATH
    if text.startswith("/") or text.endswith("/"):
        raise XmlPathError(f"path must be relative, without leading/trailing '/': {text!r}")
    if "//" in text:
        raise XmlPathError(f"descendant axis '//' is not allowed: {text!r}")
    steps = text.split("/")
    for step in steps:
        if "*" in step:
            raise XmlPathError(f"wildcards are not allowed: {text!r}")
        if "[" in step or "]" in step:
            raise XmlPathError(
                f"embedded predicates are not allowed in a bare path: {text!r}"
            )
    return Path(steps)
