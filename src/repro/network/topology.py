"""Super-peer network topology.

StreamGlobe's architecture (Section 1, [3]) organizes the network as a
stationary backbone of *super-peers* — powerful servers that execute
operators and relay streams — plus *thin-peers* registered at exactly one
super-peer each, which contribute data streams or subscribe to queries.

:class:`Network` is a small undirected graph tailored to what the
sharing algorithms and the cost model need: per-node capacity ``l(v)``
and performance index, per-link bandwidth ``b(e)``, neighbor iteration,
and canonical link identities (an undirected edge compares equal in both
orientations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


class TopologyError(Exception):
    """Raised for structural errors: unknown nodes, duplicate links, ..."""


@dataclass(frozen=True)
class SuperPeer:
    """A backbone node that can host operators and relay streams.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"SP4"``.
    capacity:
        Maximum computational load ``l(v)`` in abstract work units per
        virtual second.
    pindex:
        Performance index of the peer (Section 3.2): a multiplier on
        operator base loads.  A faster machine has a *smaller* pindex.
    """

    name: str
    capacity: float = 1_000_000.0
    pindex: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise TopologyError(f"peer {self.name}: capacity must be positive")
        if self.pindex <= 0:
            raise TopologyError(f"peer {self.name}: pindex must be positive")


@dataclass(frozen=True)
class ThinPeer:
    """A device registered at one super-peer: a source or a subscriber."""

    name: str
    super_peer: str


@dataclass(frozen=True)
class Link:
    """An undirected backbone connection with bandwidth ``b(e)`` in bit/s."""

    a: str
    b: str
    bandwidth: float = 100_000_000.0  # the paper's 100 Mbit/s LAN

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-loop at {self.a}")
        if self.bandwidth <= 0:
            raise TopologyError(f"link {self.a}-{self.b}: bandwidth must be positive")
        # Canonical orientation so Link("x","y") == Link("y","x").
        if self.a > self.b:
            first, second = self.b, self.a
            object.__setattr__(self, "a", first)
            object.__setattr__(self, "b", second)

    @property
    def ends(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.a}-{self.b}"


class Network:
    """The super-peer backbone plus registered thin-peers.

    Peers "may connect to and disconnect from the network at any time"
    (Section 1), so besides construction the topology supports *churn*:
    :meth:`remove_super_peer` / :meth:`remove_link` model crashes and
    connection failures, :meth:`restore_super_peer` /
    :meth:`restore_link` model rejoins.  Removed entities are stashed so
    tear-down bookkeeping (which must release commitments estimated
    against the old topology) can still resolve them via the
    ``include_removed`` lookups, and so a later rejoin restores the
    exact same capacities and bandwidths.  Every mutation bumps
    :attr:`version`, invalidating any routing state derived from an
    earlier topology.
    """

    def __init__(self) -> None:
        self._peers: Dict[str, SuperPeer] = {}
        self._thin_peers: Dict[str, ThinPeer] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._removed_peers: Dict[str, SuperPeer] = {}
        self._removed_links: Dict[Tuple[str, str], Link] = {}
        #: Link keys torn down by a peer crash, keyed by the peer whose
        #: restoration should bring them back.
        self._crash_links: Dict[str, List[Tuple[str, str]]] = {}
        #: Monotonic counter bumped on every topology mutation; holders
        #: of derived routing state compare against it to detect staleness.
        self.version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_super_peer(
        self, name: str, capacity: float = 1_000_000.0, pindex: float = 1.0
    ) -> SuperPeer:
        if name in self._peers:
            raise TopologyError(f"duplicate super-peer {name}")
        if name in self._removed_peers:
            raise TopologyError(
                f"super-peer {name} is removed; use restore_super_peer"
            )
        peer = SuperPeer(name, capacity, pindex)
        self._peers[name] = peer
        self._adjacency[name] = []
        return peer

    def add_thin_peer(self, name: str, super_peer: str) -> ThinPeer:
        if name in self._thin_peers:
            raise TopologyError(f"duplicate thin-peer {name}")
        if super_peer not in self._peers:
            raise TopologyError(f"unknown super-peer {super_peer}")
        thin = ThinPeer(name, super_peer)
        self._thin_peers[name] = thin
        return thin

    def add_link(self, a: str, b: str, bandwidth: float = 100_000_000.0) -> Link:
        for end in (a, b):
            if end not in self._peers:
                raise TopologyError(f"unknown super-peer {end}")
        link = Link(a, b, bandwidth)
        if link.ends in self._links:
            raise TopologyError(f"duplicate link {link}")
        if link.ends in self._removed_links:
            raise TopologyError(f"link {link} is removed; use restore_link")
        self._links[link.ends] = link
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        return link

    # ------------------------------------------------------------------
    # Churn (crashes, connection failures, rejoins)
    # ------------------------------------------------------------------
    def remove_super_peer(self, name: str) -> List[Link]:
        """Crash a super-peer: detach it and every incident link.

        Returns the links torn down with the peer.  The peer's record
        (and its links') are stashed for :meth:`restore_super_peer`;
        thin-peers registered at the crashed super-peer stay registered
        but are unreachable until it rejoins.
        """
        peer = self._peers.pop(name, None)
        if peer is None:
            if name in self._removed_peers:
                raise TopologyError(f"super-peer {name} is already removed")
            raise TopologyError(f"unknown super-peer {name}")
        self._removed_peers[name] = peer
        torn_down: List[Link] = []
        for neighbor in self._adjacency.pop(name):
            key = (name, neighbor) if name < neighbor else (neighbor, name)
            link = self._links.pop(key, None)
            if link is None:
                continue  # already failed independently
            self._adjacency[neighbor].remove(name)
            self._removed_links[key] = link
            self._crash_links.setdefault(name, []).append(key)
            torn_down.append(link)
        self.version += 1
        return torn_down

    def restore_super_peer(self, name: str) -> List[Link]:
        """Rejoin a crashed super-peer with its original capacity.

        Links torn down by the crash come back with it — except those
        whose other endpoint is still removed; these are re-queued to
        return when *that* peer rejoins.  Returns the restored links.
        """
        peer = self._removed_peers.pop(name, None)
        if peer is None:
            raise TopologyError(f"super-peer {name} is not removed")
        self._peers[name] = peer
        self._adjacency[name] = []
        restored: List[Link] = []
        for key in self._crash_links.pop(name, []):
            link = self._removed_links.get(key)
            if link is None:
                continue  # explicitly restored or permanently failed
            other = link.other(name)
            if other not in self._peers:
                # Hand the link over to the still-crashed endpoint.
                self._crash_links.setdefault(other, []).append(key)
                continue
            del self._removed_links[key]
            self._links[key] = link
            self._adjacency[link.a].append(link.b)
            self._adjacency[link.b].append(link.a)
            restored.append(link)
        self.version += 1
        return restored

    def remove_link(self, a: str, b: str) -> Link:
        """Fail one backbone connection (both super-peers stay up)."""
        key = (a, b) if a < b else (b, a)
        link = self._links.pop(key, None)
        if link is None:
            if key in self._removed_links:
                raise TopologyError(f"link {key[0]}-{key[1]} is already removed")
            raise TopologyError(f"no link between {a} and {b}")
        self._adjacency[link.a].remove(link.b)
        self._adjacency[link.b].remove(link.a)
        self._removed_links[key] = link
        self.version += 1
        return link

    def restore_link(self, a: str, b: str) -> Link:
        """Bring a failed connection back (both endpoints must be live)."""
        key = (a, b) if a < b else (b, a)
        link = self._removed_links.get(key)
        if link is None:
            raise TopologyError(f"link {key[0]}-{key[1]} is not removed")
        for end in key:
            if end not in self._peers:
                raise TopologyError(
                    f"cannot restore link {key[0]}-{key[1]}: "
                    f"super-peer {end} is still removed"
                )
        del self._removed_links[key]
        self._links[key] = link
        self._adjacency[link.a].append(link.b)
        self._adjacency[link.b].append(link.a)
        self.version += 1
        return link

    def removed_super_peer_names(self) -> List[str]:
        return list(self._removed_peers)

    def removed_links(self) -> List[Link]:
        return list(self._removed_links.values())

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def super_peer(self, name: str, include_removed: bool = False) -> SuperPeer:
        try:
            return self._peers[name]
        except KeyError:
            if include_removed and name in self._removed_peers:
                return self._removed_peers[name]
            raise TopologyError(f"unknown super-peer {name}") from None

    def thin_peer(self, name: str) -> ThinPeer:
        try:
            return self._thin_peers[name]
        except KeyError:
            raise TopologyError(f"unknown thin-peer {name}") from None

    def home_of(self, peer_name: str) -> str:
        """Super-peer of a thin-peer; a super-peer is its own home."""
        if peer_name in self._peers:
            return peer_name
        return self.thin_peer(peer_name).super_peer

    def link(self, a: str, b: str, include_removed: bool = False) -> Link:
        key = (a, b) if a < b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            if include_removed and key in self._removed_links:
                return self._removed_links[key]
            raise TopologyError(f"no link between {a} and {b}") from None

    def has_link(self, a: str, b: str) -> bool:
        key = (a, b) if a < b else (b, a)
        return key in self._links

    def neighbors(self, node: str) -> List[str]:
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise TopologyError(f"unknown super-peer {node}") from None

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def super_peers(self) -> List[SuperPeer]:
        return list(self._peers.values())

    def super_peer_names(self) -> List[str]:
        return list(self._peers)

    def thin_peers(self) -> List[ThinPeer]:
        return list(self._thin_peers.values())

    def links(self) -> List[Link]:
        return list(self._links.values())

    def __contains__(self, name: str) -> bool:
        return name in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def __iter__(self) -> Iterator[str]:
        return iter(self._peers)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_connected(self) -> None:
        """Raise :class:`TopologyError` if the backbone is disconnected."""
        if not self._peers:
            return
        seen = set()
        frontier = [next(iter(self._peers))]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._adjacency[node])
        missing = set(self._peers) - seen
        if missing:
            raise TopologyError(f"backbone is disconnected; unreachable: {sorted(missing)}")


def example_topology() -> Network:
    """The 8-super-peer topology of Figures 1 and 2.

    The backbone drawn in the figures: SP0–SP7 arranged as two rows of
    four with the photon source thin-peer P0 at SP4 and subscriber
    thin-peers P1–P4 at SP1, SP3, SP3, SP0 respectively.
    """
    net = Network()
    for i in range(8):
        net.add_super_peer(f"SP{i}")
    # Wiring consistent with the figures and the running example: two
    # rows (SP4 SP6 SP0 SP2 above, SP5 SP7 SP1 SP3 below) with vertical
    # links, plus the SP5-SP1 connection the text's Query-1 route
    # (SP4 -> SP5 -> SP1) requires.
    for a, b in [
        ("SP4", "SP6"),
        ("SP6", "SP0"),
        ("SP0", "SP2"),
        ("SP5", "SP7"),
        ("SP7", "SP1"),
        ("SP1", "SP3"),
        ("SP4", "SP5"),
        ("SP6", "SP7"),
        ("SP0", "SP1"),
        ("SP2", "SP3"),
        ("SP5", "SP1"),
    ]:
        net.add_link(a, b)
    net.add_thin_peer("P0", "SP4")  # the satellite-bound telescope
    net.add_thin_peer("P1", "SP1")  # registers Query 1
    net.add_thin_peer("P2", "SP7")  # registers Query 2 (reuse at SP5, via SP7)
    net.add_thin_peer("P3", "SP3")  # registers Query 3
    net.add_thin_peer("P4", "SP0")  # registers Query 4
    net.check_connected()
    return net


def grid_topology(rows: int = 4, cols: int = 4) -> Network:
    """A ``rows × cols`` grid of super-peers (the second scenario)."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    net = Network()
    for r in range(rows):
        for c in range(cols):
            net.add_super_peer(f"SP{r * cols + c}")
    for r in range(rows):
        for c in range(cols):
            here = f"SP{r * cols + c}"
            if c + 1 < cols:
                net.add_link(here, f"SP{r * cols + c + 1}")
            if r + 1 < rows:
                net.add_link(here, f"SP{(r + 1) * cols + c}")
    net.check_connected()
    return net
