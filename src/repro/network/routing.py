"""Shortest-path routing over the super-peer backbone.

All three strategies in the paper route streams along shortest paths in
hop count (Section 4: "using a shortest path in the network").  The
backbone links all have the same nominal bandwidth, so plain
breadth-first search is exact; ties are broken deterministically by
visiting neighbors in insertion order, which keeps every benchmark run
reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

from .topology import Link, Network, TopologyError


class NoRouteError(TopologyError):
    """Raised when no path exists between two super-peers."""


def _describe_endpoint(net: Network, name: str) -> str:
    """``'SP3' (removed from the backbone)`` or ``'SP3' (never existed)``."""
    if name in net.removed_super_peer_names():
        return f"{name!r} (removed from the backbone)"
    return f"{name!r} (never existed)"


def _churn_note(net: Network) -> str:
    """A parenthetical listing current removals, or ``""`` if none."""
    parts = []
    removed_peers = net.removed_super_peer_names()
    if removed_peers:
        parts.append(f"removed super-peers: {', '.join(sorted(removed_peers))}")
    removed_links = net.removed_links()
    if removed_links:
        parts.append(
            f"removed links: {', '.join(sorted(str(link) for link in removed_links))}"
        )
    return f" ({'; '.join(parts)})" if parts else ""


def shortest_path(net: Network, source: str, target: str) -> List[str]:
    """Shortest node sequence from ``source`` to ``target`` (inclusive).

    Raises :class:`NoRouteError` when the nodes are disconnected.
    """
    missing = [name for name in (source, target) if name not in net]
    if missing:
        detail = ", ".join(_describe_endpoint(net, name) for name in missing)
        label = "endpoints" if len(missing) > 1 else "endpoint"
        raise TopologyError(f"unknown {label}: {detail}")
    if source == target:
        return [source]
    parents: Dict[str, str] = {}
    queue = deque([source])
    seen = {source}
    while queue:
        node = queue.popleft()
        for neighbor in net.neighbors(node):
            if neighbor in seen:
                continue
            parents[neighbor] = node
            if neighbor == target:
                return _reconstruct(parents, source, target)
            seen.add(neighbor)
            queue.append(neighbor)
    raise NoRouteError(f"no route from {source} to {target}{_churn_note(net)}")


def _reconstruct(parents: Dict[str, str], source: str, target: str) -> List[str]:
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


class RouteCache:
    """Memoized :func:`shortest_path` keyed on ``(source, target)``.

    The backbone topology only changes through the churn APIs, and every
    one of those bumps :attr:`Network.version`; the cache checks the
    counter on each lookup and drops itself wholesale when it moved, so
    crash/rejoin repairs always re-route against the current topology
    without any explicit invalidation hook.

    Each direction is computed and cached independently — BFS ties can
    break differently per direction, and plans must be byte-identical to
    direct ``shortest_path`` calls.  Routing errors (disconnected
    endpoints) propagate uncached, so a later rejoin can succeed.

    ``hits``/``misses``/``invalidations`` are always-on plain-int
    counters (surfaced through ``StreamGlobe.cache_stats`` and the
    observability registry); ``invalidations`` counts wholesale drops,
    i.e. lookups that found :attr:`Network.version` had moved.
    """

    __slots__ = ("net", "_version", "_paths", "hits", "misses", "invalidations")

    def __init__(self, net: Network) -> None:
        self.net = net
        self._version = net.version
        self._paths: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def path(self, source: str, target: str) -> Tuple[str, ...]:
        if self._version != self.net.version:
            self._paths.clear()
            self._version = self.net.version
            self.invalidations += 1
        key = (source, target)
        route = self._paths.get(key)
        if route is None:
            self.misses += 1
            route = tuple(shortest_path(self.net, source, target))
            self._paths[key] = route
        else:
            self.hits += 1
        return route

    def __len__(self) -> int:
        return len(self._paths)


def hop_distance(net: Network, source: str, target: str) -> int:
    """Number of links on the shortest path between two super-peers."""
    return len(shortest_path(net, source, target)) - 1


def path_links(net: Network, path: Sequence[str]) -> List[Link]:
    """The links traversed by a node sequence."""
    return [net.link(a, b) for a, b in zip(path, path[1:])]


def all_distances(net: Network, source: str) -> Dict[str, int]:
    """Hop distance from ``source`` to every reachable super-peer."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in net.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def eccentricity(net: Network, source: str) -> int:
    """Largest hop distance from ``source`` to any super-peer."""
    distances = all_distances(net, source)
    if len(distances) != len(net):
        raise NoRouteError(
            f"{source} cannot reach the whole backbone{_churn_note(net)}"
        )
    return max(distances.values())
