"""Super-peer P2P network substrate (Section 1, [3])."""

from .routing import (
    NoRouteError,
    RouteCache,
    all_distances,
    eccentricity,
    hop_distance,
    path_links,
    shortest_path,
)
from .topology import (
    Link,
    Network,
    SuperPeer,
    ThinPeer,
    TopologyError,
    example_topology,
    grid_topology,
)

__all__ = [
    "Link",
    "Network",
    "NoRouteError",
    "RouteCache",
    "SuperPeer",
    "ThinPeer",
    "TopologyError",
    "all_distances",
    "eccentricity",
    "example_topology",
    "grid_topology",
    "hop_distance",
    "path_links",
    "shortest_path",
]
