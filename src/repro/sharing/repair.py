"""Plan repair after backbone faults.

When a super-peer crashes or a connection fails, every installed stream
whose route crossed the lost node or link stops flowing, and every
subscription fed (directly or transitively) by such a stream stops
receiving results.  :class:`PlanRepairer` restores the deployment to a
consistent, verifiable state against the *surviving* topology:

1. **damage analysis** — a stream is damaged when any node or link on
   its route is gone; descendants of damaged streams are damaged
   transitively (their input dried up).  This is deliberately
   conservative: a child tapping its parent at the origin survives a
   break further downstream in reality, but tearing it down and letting
   re-registration rediscover the (still installed) surviving prefix
   keeps the analysis simple and the repaired state verifiable;
2. **tear-down** — affected subscriptions are removed and their streams
   garbage-collected through the deregistration machinery, releasing
   every estimated commitment (including those on now-removed peers and
   links, via the topology's removed-entity stash);
3. **re-registration** — each affected subscription is registered
   afresh via the configured strategy, exactly as a new query would be:
   Algorithm 1 searches the surviving topology and shares surviving
   streams.  Window state is *not* migrated — recovered windowed
   queries restart their windows (DESIGN.md §8);
4. **verification** — with ``verify=True`` the PR 1 plan verifier runs
   on the repaired deployment and raises on any violated invariant.

Subscriptions that cannot be repaired *yet* — their subscriber's or
their source's super-peer is down, or the backbone is partitioned —
are parked as *pending* and retried on every later repair (i.e. after
a rejoin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from ..costmodel import PlanEffects, estimate_stream_rate
from ..network.topology import Network, TopologyError
from ..properties import raw_stream_properties
from .deregister import Deregistrar
from .plan import Deployment, InstalledStream, RegisteredQuery
from .planner import PlanningError
from .subscribe import RegistrationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .system import StreamGlobe


@dataclass
class RepairReport:
    """What one repair pass found, tore down, and rebuilt."""

    context: str
    damaged_streams: List[str] = field(default_factory=list)
    removed_streams: List[str] = field(default_factory=list)
    torn_down_queries: List[str] = field(default_factory=list)
    reregistered: List[RegistrationResult] = field(default_factory=list)
    #: Subscriptions that could not be re-registered: ``(query, reason)``.
    pending: List[Tuple[str, str]] = field(default_factory=list)
    reinstalled_sources: List[str] = field(default_factory=list)

    @property
    def repaired_queries(self) -> List[str]:
        return [r.query for r in self.reregistered if r.accepted]

    def recovery_time_ms(self) -> float:
        """Stream time until the slowest re-registration completed.

        Re-registrations run concurrently on different super-peers, so
        recovery takes as long as the slowest one (the same latency
        model that produced Table 1's registration times).
        """
        return max(
            (r.registration_ms for r in self.reregistered if r.accepted),
            default=0.0,
        )

    def summary(self) -> str:
        return (
            f"{self.context}: {len(self.damaged_streams)} damaged stream(s), "
            f"{len(self.torn_down_queries)} quer(ies) torn down, "
            f"{len(self.repaired_queries)} re-registered, "
            f"{len(self.pending)} pending"
        )


class PlanRepairer:
    """Repairs a :class:`StreamGlobe` deployment after topology faults.

    Stateful: subscriptions that cannot be re-registered against the
    current topology are remembered and retried on every subsequent
    :meth:`repair` call, so a rejoin heals them automatically.
    """

    def __init__(self, system: "StreamGlobe") -> None:
        self.system = system
        self._pending: Dict[str, Tuple[RegisteredQuery, str]] = {}

    # ------------------------------------------------------------------
    @property
    def pending(self) -> List[Tuple[str, str]]:
        """Currently unrepairable subscriptions as ``(query, reason)``."""
        return [(name, reason) for name, (_, reason) in sorted(self._pending.items())]

    # ------------------------------------------------------------------
    def repair(self, context: str = "topology fault") -> RepairReport:
        """One repair pass against the system's current topology."""
        system = self.system
        deployment = system.deployment
        net = system.net
        recorder = system.recorder
        report = RepairReport(context=context)
        deregistrar = Deregistrar(system.planner)

        with recorder.span("repair", context=context) as repair_span:
            with recorder.span("repair.damage") as span:
                self._reinstall_sources(deployment, net, report)

                damaged = self._damaged_closure(deployment, net)
                report.damaged_streams = sorted(damaged)

                # Tear down every subscription whose subscriber vanished
                # or whose delivery chain touches a damaged stream.
                affected: Dict[str, RegisteredQuery] = {}
                for name, record in list(deployment.queries.items()):
                    if record.subscriber_node not in net or any(
                        stream_id not in deployment.streams or stream_id in damaged
                        for _, stream_id in record.delivered
                    ):
                        affected[name] = deployment.queries.pop(name)
                report.torn_down_queries = sorted(affected)
                if recorder.enabled:
                    span.set(
                        damaged_streams=len(damaged),
                        torn_down_queries=len(affected),
                    )

            with recorder.span("repair.teardown") as span:
                # Release the torn-down subscriptions' post-processing
                # load, then sweep: with their consumers gone, damaged
                # derived streams are dead and the (idempotent) garbage
                # collection releases their commitments — estimated
                # against the pre-fault topology, hence the
                # removed-entity lookups in Deregistrar.
                release = PlanEffects()
                for record in affected.values():
                    for _, stream_id in record.delivered:
                        stream = deployment.streams.get(stream_id)
                        if stream is None:
                            continue
                        rate = estimate_stream_rate(stream.content, system.catalog)
                        deregistrar._charge(
                            release,
                            record.subscriber_node,
                            "restructure",
                            rate.frequency,
                        )
                report.removed_streams.extend(
                    deregistrar._collect_garbage(deployment, release)
                )
                # Damaged *original* streams (their source's home
                # crashed) are never garbage — drop them explicitly, and
                # only after the sweep: releasing a dead derived stream
                # looks up its parent's rate, so the original must still
                # be installed then.  The originals themselves carry no
                # committed effects (single-node route, no pipeline).
                for stream_id in sorted(damaged):
                    stream = deployment.streams.get(stream_id)
                    if stream is not None and stream.is_original:
                        deployment.release_stream(stream_id)
                        report.removed_streams.append(stream_id)
                deregistrar._apply_release(deployment, release)
                if recorder.enabled:
                    span.set(removed_streams=len(report.removed_streams))

            with recorder.span("repair.reregister") as span:
                # Re-registration: previously pending subscriptions
                # first (they have waited longest), then this fault's,
                # each in name order.
                candidates: List[Tuple[str, RegisteredQuery]] = [
                    (name, self._pending.pop(name)[0])
                    for name in sorted(self._pending)
                ]
                candidates.extend(sorted(affected.items()))
                for name, record in candidates:
                    self._reregister(deployment, net, name, record, report)
                report.pending = self.pending
                if recorder.enabled:
                    span.set(
                        reregistered=len(report.repaired_queries),
                        pending=len(report.pending),
                    )

            if recorder.enabled:
                repair_span.set(summary=report.summary())

        if recorder.enabled:
            recorder.event(
                "repair.report",
                context=context,
                damaged_streams=len(report.damaged_streams),
                removed_streams=len(report.removed_streams),
                torn_down_queries=len(report.torn_down_queries),
                queries_repaired=len(report.repaired_queries),
                queries_lost=len(report.pending),
                sources_reinstalled=len(report.reinstalled_sources),
                recovery_time_ms=report.recovery_time_ms(),
            )

        system._preflight(f"after plan repair ({context})")
        return report

    # ------------------------------------------------------------------
    def _reinstall_sources(
        self, deployment: Deployment, net: Network, report: RepairReport
    ) -> None:
        """Re-install original streams whose home super-peer rejoined."""
        for name, source in self.system.sources.items():
            if name in deployment.streams or source.home_node not in net:
                continue
            deployment.install_stream(
                InstalledStream(
                    stream_id=name,
                    content=raw_stream_properties(
                        name, source.item_path
                    ).single_input(),
                    origin_node=source.home_node,
                    route=(source.home_node,),
                )
            )
            report.reinstalled_sources.append(name)

    @staticmethod
    def _damaged_closure(deployment: Deployment, net: Network) -> Set[str]:
        damaged: Set[str] = set()
        for stream in deployment.streams.values():
            if any(node not in net for node in stream.route) or any(
                not net.has_link(a, b) for a, b in stream.links()
            ):
                damaged.add(stream.stream_id)
        # Descendants of damaged streams lost their input.
        changed = True
        while changed:
            changed = False
            for stream in deployment.streams.values():
                if (
                    stream.stream_id not in damaged
                    and stream.parent_id is not None
                    and stream.parent_id in damaged
                ):
                    damaged.add(stream.stream_id)
                    changed = True
        return damaged

    def _reregister(
        self,
        deployment: Deployment,
        net: Network,
        name: str,
        record: RegisteredQuery,
        report: RepairReport,
    ) -> None:
        if record.subscriber_node not in net:
            self._park(
                record, f"subscriber super-peer {record.subscriber_node} is removed"
            )
            return
        missing = [
            sp.stream
            for sp in record.properties.input_streams()
            if sp.stream not in deployment.streams
        ]
        if missing:
            self._park(
                record,
                f"original stream(s) unavailable: {', '.join(sorted(missing))}",
            )
            return
        try:
            result = self.system.registrar.register(
                deployment, record.properties, record.analyzed, record.subscriber_node
            )
        except (PlanningError, TopologyError) as exc:
            self._park(record, str(exc))
            return
        if not result.accepted:
            self._park(record, result.rejection_reason or "registration rejected")
            return
        report.reregistered.append(result)

    def _park(self, record: RegisteredQuery, reason: str) -> None:
        self._pending[record.name] = (record, reason)
