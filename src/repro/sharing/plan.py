"""Evaluation plans and the deployed-network state.

An *evaluation plan* ``P`` (Section 3.3) names the operators to install,
the peers to install them on, and the additional data streams to route.
A plan for one input stream of a subscription consists of:

* the reused stream and the node where it is tapped (duplicated);
* an optional *relay* stream shipping the reused content unmodified from
  the tap node to the processing node;
* the *delivered* stream: the compensation pipeline's output, routed to
  the subscriber's super-peer.

:class:`Deployment` is the persistent network state the incremental
registration algorithm works against: every installed stream, which
super-peers it is available at (every node on its route), the
subscriptions served, and the estimated resource usage underlying
``a_b``/``a_l`` in the cost function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..costmodel import NetworkUsage, PlanEffects
from ..network.topology import Network
from ..properties import OperatorSpec, Properties, StreamProperties
from ..wxquery import AnalyzedQuery
from .index import StreamAvailabilityIndex, SubscriptionProbe


@dataclass(frozen=True)
class InstalledStream:
    """One data stream flowing in the network.

    Attributes
    ----------
    stream_id:
        Unique identifier (e.g. ``"photons"`` or ``"Q7:photons"``).
    content:
        What the stream contains, as :class:`StreamProperties` relative
        to its original input stream — this is what Algorithm 2 matches.
    origin_node:
        Super-peer where the stream is produced (where ``pipeline``
        runs; for an original stream, the source's home super-peer).
    route:
        Node sequence from origin to the delivery target (inclusive);
        the stream is *available* for sharing at every node on it.
    parent_id:
        The stream this one is derived from (``None`` for originals).
    pipeline:
        Compensation operator specs executed at ``origin_node`` to turn
        the parent's items into this stream's items (empty for originals
        and pure relay streams).
    query:
        Name of the subscription this stream was created for (``None``
        for original source streams).
    """

    stream_id: str
    content: StreamProperties
    origin_node: str
    route: Tuple[str, ...]
    parent_id: Optional[str] = None
    pipeline: Tuple[OperatorSpec, ...] = ()
    query: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.route:
            raise ValueError(f"stream {self.stream_id}: empty route")
        if self.route[0] != self.origin_node:
            raise ValueError(
                f"stream {self.stream_id}: route must start at the origin node"
            )

    @property
    def target_node(self) -> str:
        return self.route[-1]

    @property
    def is_original(self) -> bool:
        return self.parent_id is None

    def links(self) -> List[Tuple[str, str]]:
        return list(zip(self.route, self.route[1:]))


@dataclass(frozen=True)
class RegisteredQuery:
    """A subscription installed in the network."""

    name: str
    properties: Properties
    analyzed: AnalyzedQuery
    subscriber_node: str
    #: Per input stream: the delivered stream's id.
    delivered: Tuple[Tuple[str, str], ...]  # (input stream name, stream_id)


@dataclass
class InputPlan:
    """The chosen plan ``P_s`` for one input stream of a subscription.

    ``widening`` is set when the plan reuses a stream only after
    *widening* it (the Section 6 enhancement, see
    :mod:`repro.sharing.widening`); its delta effects are folded into
    the evaluation plan's combined effects.
    """

    input_stream: str
    reused_id: str
    tap_node: str
    placement_node: str
    relay: Optional[InstalledStream]
    delivered: InstalledStream
    effects: PlanEffects
    cost: float
    widening: Optional[object] = None  # WideningAction (import-cycle-free)
    #: Cost of Algorithm 1's *initial* plan (ship the original stream to
    #: the subscriber) — the baseline the chosen plan improved on; set
    #: by the search, reported in the decision record.
    initial_cost: Optional[float] = None

    def new_streams(self) -> List[InstalledStream]:
        streams = [] if self.relay is None else [self.relay]
        streams.append(self.delivered)
        return streams


@dataclass
class EvaluationPlan:
    """The overall plan ``P`` for a subscription (one entry per input)."""

    query: str
    inputs: List[InputPlan] = field(default_factory=list)
    #: Search telemetry feeding the registration latency model.
    visited_nodes: int = 0
    candidate_matches: int = 0

    def total_cost(self) -> float:
        return sum(plan.cost for plan in self.inputs)

    def combined_effects(self) -> PlanEffects:
        effects = PlanEffects()
        for plan in self.inputs:
            effects.merge(plan.effects)
            if plan.widening is not None:
                effects.merge(plan.widening.effects)  # type: ignore[attr-defined]
        return effects

    def installed_operator_count(self) -> int:
        count = 0
        for plan in self.inputs:
            count += len(plan.delivered.pipeline)
            if plan.relay is not None:
                count += len(plan.relay.pipeline)
        return count + 1  # the restructuring step at the subscriber

    def route_hop_count(self) -> int:
        hops = 0
        for plan in self.inputs:
            hops += len(plan.delivered.route) - 1
            if plan.relay is not None:
                hops += len(plan.relay.route) - 1
        return hops


class Deployment:
    """The incrementally evolving state of the stream network."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self.streams: Dict[str, InstalledStream] = {}
        self.queries: Dict[str, RegisteredQuery] = {}
        self.usage = NetworkUsage(net)
        self._available: Dict[str, List[str]] = {name: [] for name in net}
        #: Inverted signature index over the same availability facts;
        #: maintained in lock-step with ``_available`` (invariant P14x).
        self.sharing_index = StreamAvailabilityIndex()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def install_stream(self, stream: InstalledStream) -> None:
        if stream.stream_id in self.streams:
            raise ValueError(f"stream {stream.stream_id!r} already installed")
        if stream.parent_id is not None and stream.parent_id not in self.streams:
            raise ValueError(
                f"stream {stream.stream_id!r}: unknown parent {stream.parent_id!r}"
            )
        self.streams[stream.stream_id] = stream
        for node in stream.route:
            # setdefault: a super-peer may have rejoined the topology
            # after this deployment was constructed.
            self._available.setdefault(node, []).append(stream.stream_id)
        self.sharing_index.add(stream.stream_id, stream.content, stream.route)

    def release_stream(self, stream_id: str) -> bool:
        """Uninstall one stream; idempotent and atomic.

        Removes the stream record and every availability-index entry
        its route created.  Returns ``True`` if the stream was
        installed, ``False`` if it was already gone (releasing twice —
        e.g. once through deregistration and once through plan repair —
        is a no-op, never an error, and never leaves the index
        half-mutated).
        """
        stream = self.streams.pop(stream_id, None)
        if stream is None:
            return False
        for node in stream.route:
            bucket = self._available.get(node)
            if bucket is None:
                continue
            try:
                bucket.remove(stream_id)
            except ValueError:
                pass  # index entry already gone; keep the removal atomic
        self.sharing_index.discard(stream_id, stream.route)
        return True

    def register_query(self, record: RegisteredQuery) -> None:
        if record.name in self.queries:
            raise ValueError(f"query {record.name!r} already registered")
        self.queries[record.name] = record

    def commit_effects(self, effects: PlanEffects) -> None:
        """Fold a plan's estimated usage into the persistent state."""
        for link, bits in effects.link_bits.items():
            self.usage.add_link_traffic(link, bits)
        for peer, work in effects.peer_work.items():
            self.usage.add_peer_work(peer, work)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def streams_at(self, node: str) -> List[InstalledStream]:
        """Streams available for sharing at ``node`` (on their route)."""
        return [self.streams[stream_id] for stream_id in self._available[node]]

    def candidates_at(
        self, node: str, probe: SubscriptionProbe
    ) -> List[InstalledStream]:
        """Indexed variant of :meth:`streams_at`: only streams
        structurally compatible with ``probe``, sorted by stream id."""
        return [
            self.streams[stream_id]
            for stream_id in self.sharing_index.candidate_ids(node, probe)
        ]

    def distinct_candidates_at(
        self, node: str, probe: SubscriptionProbe
    ) -> List[Tuple[InstalledStream, Set[str]]]:
        """Indexed candidates grouped by *content*: one representative
        stream per distinct content, plus the delivery targets of every
        stream in the group.

        Two streams with identical content tapped at the same node
        produce byte-identical plan effects and cost — only the parent
        linkage differs — so under the deterministic smallest-id-first
        tie-break only the group's smallest id can ever win.  Matching
        once per content and costing only the representative is
        therefore plan-equivalent to the full scan; the targets keep
        Algorithm 1's search frontier exact (every matched stream still
        contributes its delivery target).

        Representatives are returned in ascending stream-id order (the
        group's smallest id; first occurrence over the id-sorted
        candidate list).
        """
        representatives: Dict[StreamProperties, InstalledStream] = {}
        targets: Dict[StreamProperties, Set[str]] = {}
        order: List[StreamProperties] = []
        for stream_id in self.sharing_index.candidate_ids(node, probe):
            stream = self.streams[stream_id]
            content = stream.content
            group = targets.get(content)
            if group is None:
                representatives[content] = stream
                targets[content] = {stream.target_node}
                order.append(content)
            else:
                group.add(stream.target_node)
        return [(representatives[content], targets[content]) for content in order]

    def original_streams(self) -> List[InstalledStream]:
        return [s for s in self.streams.values() if s.is_original]

    def stream(self, stream_id: str) -> InstalledStream:
        try:
            return self.streams[stream_id]
        except KeyError:
            raise KeyError(f"unknown stream {stream_id!r}") from None

    def find_original(self, stream_name: str) -> InstalledStream:
        for stream in self.original_streams():
            if stream.stream_id == stream_name:
                return stream
        raise KeyError(f"no original stream named {stream_name!r} is registered")
