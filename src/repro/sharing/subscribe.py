"""``Subscribe`` — Algorithm 1: breadth-first search for shareable
streams and cost-based plan selection.

For each input stream of a newly registered subscription the algorithm

1. starts from the plan that routes the *original* input stream to the
   subscriber and evaluates everything there (lines 4–5);
2. breadth-first searches the network from the original stream's node,
   following only matched streams' delivery targets (lines 7–25) — a
   non-matching property adds no nodes, so the search visits only the
   relevant part of the network;
3. matches every variant stream available at each visited node against
   the subscription (Algorithm 2) and keeps the cheapest plan under the
   cost function ``C`` (lines 19–22).

The queue discipline is configurable: FIFO gives the paper's
breadth-first search, LIFO the depth-first alternative the paper notes
would be equally possible (ablation bench E8).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set

from ..costmodel import LatencyModel
from ..matching import MatchMemo, match_stream_properties
from ..properties import Properties, StreamProperties
from ..wxquery import AnalyzedQuery
from .index import SubscriptionProbe
from .plan import Deployment, EvaluationPlan, InputPlan, InstalledStream, RegisteredQuery
from .planner import Planner, PlanningError


@dataclass
class RegistrationResult:
    """Outcome of registering one subscription."""

    query: str
    accepted: bool
    plan: Optional[EvaluationPlan]
    registration_ms: float
    rejection_reason: Optional[str] = None


class Subscriber:
    """Runs Algorithm 1 against a deployment and commits the result."""

    def __init__(
        self,
        planner: Planner,
        match_mode: str = "edgewise",
        search_order: str = "bfs",
        admission_control: bool = False,
        share_aggregates: bool = True,
        enable_widening: bool = False,
        use_index: bool = True,
    ) -> None:
        if search_order not in ("bfs", "dfs"):
            raise ValueError("search_order must be 'bfs' or 'dfs'")
        self.planner = planner
        self.match_mode = match_mode
        self.search_order = search_order
        self.admission_control = admission_control
        #: Ablation switch (bench E8): with ``False``, existing aggregate
        #: result streams are never considered for reuse.
        self.share_aggregates = share_aggregates
        #: The Section 6 enhancement: consider widening almost-matching
        #: streams (see :mod:`repro.sharing.widening`).
        self.enable_widening = enable_widening
        #: Control-plane scale-up: consult the deployment's
        #: StreamAvailabilityIndex instead of scanning every stream at a
        #: node, and memoize matching verdicts.  Plan-equivalent to the
        #: brute-force scan (the index only prunes guaranteed
        #: non-matches); ``False`` keeps the paper-faithful linear scan,
        #: e.g. as the benchmark baseline.  Widening needs the near-miss
        #: candidates the index would prune, so it forces the scan.
        self.use_index = use_index
        self.match_memo = MatchMemo() if use_index else None
        if enable_widening:
            from .widening import WideningPlanner

            self._widening_planner = WideningPlanner(planner)
        else:
            self._widening_planner = None

    # ------------------------------------------------------------------
    def subscribe(
        self,
        deployment: Deployment,
        properties: Properties,
        analyzed: AnalyzedQuery,
        subscriber_node: str,
    ) -> RegistrationResult:
        """Register a subscription; returns the outcome (never raises
        for capacity rejections — those are reported in the result)."""
        plan = EvaluationPlan(query=properties.name)
        recorder = self.planner.recorder

        with recorder.span("search", query=properties.name) as span:
            for subscription_input in properties.input_streams():  # line 2
                best = self._search_input(
                    deployment,
                    subscription_input,
                    properties.name,
                    subscriber_node,
                    plan,
                )
                plan.inputs.append(best)                            # line 27
            if recorder.enabled:
                span.set(
                    visited_nodes=plan.visited_nodes,
                    candidate_matches=plan.candidate_matches,
                    inputs=len(plan.inputs),
                )

        latency = self.planner.latency_model.registration_time_ms(
            visited_nodes=plan.visited_nodes,
            candidate_matches=plan.candidate_matches,
            installed_operators=plan.installed_operator_count(),
            route_hops=plan.route_hop_count(),
        )

        if self.admission_control:
            effects = plan.combined_effects()
            if self.planner.cost_model.overloads(effects, deployment.usage):
                return RegistrationResult(
                    query=properties.name,
                    accepted=False,
                    plan=plan,
                    registration_ms=latency,
                    rejection_reason="no evaluation plan without overload",
                )

        with recorder.span("commit", query=properties.name):
            self._commit(deployment, plan, properties, analyzed, subscriber_node)
        return RegistrationResult(
            query=properties.name,
            accepted=True,
            plan=plan,
            registration_ms=latency,
        )

    # ------------------------------------------------------------------
    # Algorithm 1 core
    # ------------------------------------------------------------------
    def _search_input(
        self,
        deployment: Deployment,
        subscription_input: StreamProperties,
        query_name: str,
        subscriber_node: str,
        plan: EvaluationPlan,
    ) -> InputPlan:
        try:
            original = deployment.find_original(subscription_input.stream)
        except KeyError as exc:
            raise PlanningError(str(exc)) from None

        # Lines 4–5: the initial plan ships the original stream to the
        # subscriber's super-peer and evaluates everything there.
        initial_candidates = self.planner.plans_for_candidate(
            deployment,
            original,
            original.origin_node,
            subscription_input,
            query_name,
            subscriber_node,
            placements=("target",),
        )
        best = initial_candidates[0]
        initial_cost = best.cost

        # Widening needs the almost-matching candidates the signature
        # index prunes, so it falls back to the full per-node scan.
        probe: Optional[SubscriptionProbe] = None
        if self.use_index and not self.enable_widening:
            # Interning makes recurring contents pointer-identical, so
            # memo/index/rate-cache probes short-circuit on identity
            # instead of re-running structural equality.
            subscription_input = self.planner.intern_content(subscription_input)
            probe = SubscriptionProbe.from_subscription(subscription_input)

        marked: Set[str] = set()
        queue: Deque[str] = deque([original.origin_node])           # line 6

        while queue:                                                # line 7
            node = queue.popleft() if self.search_order == "bfs" else queue.pop()
            if node in marked:
                continue
            marked.add(node)                                        # line 8
            plan.visited_nodes += 1
            # Delivery targets of matched streams (line 15); enqueued
            # after the candidate loop in sorted order so both search
            # paths expand the frontier identically.
            matched_targets: Set[str] = set()

            if probe is not None:
                # Indexed path: one representative per distinct content.
                # Same-content streams tapped at the same node plan
                # identically, and only the smallest id can win the
                # strict-< tie-break, so matching and costing the
                # representative is plan-equivalent to the full scan.
                for candidate, targets in deployment.distinct_candidates_at(
                    node, probe
                ):
                    if (
                        not self.share_aggregates
                        and candidate.content.aggregation is not None
                    ):
                        continue
                    plan.candidate_matches += 1
                    if not match_stream_properties(                 # line 14
                        candidate.content,
                        subscription_input,
                        self.match_mode,
                        self.match_memo,
                    ):
                        continue  # widening forces probe=None, no fallback here
                    matched_targets.update(targets)                 # line 15
                    for variant in self.planner.plans_for_candidate(  # line 19
                        deployment,
                        candidate,
                        node,
                        subscription_input,
                        query_name,
                        subscriber_node,
                    ):
                        if variant.cost < best.cost:                # lines 20–22
                            best = variant
            else:
                for candidate in self._variants_at(
                    deployment, node, subscription_input
                ):
                    if (
                        not self.share_aggregates
                        and candidate.content.aggregation is not None
                    ):
                        continue
                    plan.candidate_matches += 1
                    if not match_stream_properties(                 # line 14
                        candidate.content,
                        subscription_input,
                        self.match_mode,
                        self.match_memo,
                    ):
                        widened = self._widening_variant(
                            deployment, candidate, node, subscription_input,
                            query_name, subscriber_node,
                        )
                        if widened is not None and widened.cost < best.cost:
                            best = widened
                        continue
                    matched_targets.add(candidate.target_node)      # line 15
                    for variant in self.planner.plans_for_candidate(  # line 19
                        deployment,
                        candidate,
                        node,
                        subscription_input,
                        query_name,
                        subscriber_node,
                    ):
                        if variant.cost < best.cost:                # lines 20–22
                            best = variant

            for target in sorted(matched_targets):                  # lines 16–18
                if target not in marked and target not in queue:
                    queue.append(target)
        best.initial_cost = initial_cost
        return best

    def _widening_variant(
        self,
        deployment: Deployment,
        candidate: InstalledStream,
        node: str,
        subscription_input: StreamProperties,
        query_name: str,
        subscriber_node: str,
    ) -> Optional[InputPlan]:
        """Cost the best plan that reuses ``candidate`` after widening it."""
        if self._widening_planner is None:
            return None
        widened = self._widening_planner.plan_widening(
            deployment, candidate, subscription_input, query_name
        )
        if widened is None:
            return None
        widened_stream, action = widened
        best: Optional[InputPlan] = None
        for variant in self.planner.plans_for_candidate(
            deployment,
            widened_stream,
            node,
            subscription_input,
            query_name,
            subscriber_node,
        ):
            variant.widening = action
            merged = variant.effects
            combined = type(merged)()
            combined.merge(merged)
            combined.merge(action.effects)
            variant.cost = self.planner.cost_model.plan_cost(
                combined, deployment.usage
            )
            if best is None or variant.cost < best.cost:
                best = variant
        return best

    @staticmethod
    def _variants_at(
        deployment: Deployment,
        node: str,
        subscription_input: StreamProperties,
    ) -> List[InstalledStream]:
        """Line 9: streams available at ``node`` derived from the same
        original input stream (the brute-force scan; the indexed path
        uses ``Deployment.distinct_candidates_at``).

        Candidates are sorted by stream id so equal-cost plans tie-break
        identically in both search paths — the ``best`` updates use
        strict ``<``, so the first-iterated candidate wins.
        """
        return sorted(
            (
                stream
                for stream in deployment.streams_at(node)
                if stream.content.stream == subscription_input.stream
            ),
            key=lambda stream: stream.stream_id,
        )

    # ------------------------------------------------------------------
    def _commit(
        self,
        deployment: Deployment,
        plan: EvaluationPlan,
        properties: Properties,
        analyzed: AnalyzedQuery,
        subscriber_node: str,
    ) -> None:
        delivered = []
        for input_plan in plan.inputs:
            if input_plan.widening is not None:
                assert self._widening_planner is not None
                self._widening_planner.commit(deployment, input_plan.widening)
            for stream in input_plan.new_streams():
                deployment.install_stream(stream)
            delivered.append((input_plan.input_stream, input_plan.delivered.stream_id))
        deployment.commit_effects(plan.combined_effects())
        deployment.register_query(
            RegisteredQuery(
                name=properties.name,
                properties=properties,
                analyzed=analyzed,
                subscriber_node=subscriber_node,
                delivered=tuple(delivered),
            )
        )
