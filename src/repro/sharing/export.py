"""Structured export of deployment state.

``deployment_to_dict`` renders the complete network state — streams,
derivations, operator conditions, subscriptions, resource commitments —
as plain JSON-compatible dictionaries, for dashboards, golden tests,
and offline analysis.  The export is self-contained text: predicate
graphs and windows are rendered in the same notation the paper uses.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..properties import (
    AggregationSpec,
    OperatorSpec,
    ProjectionSpec,
    ReAggregationSpec,
    RestructureSpec,
    SelectionSpec,
    StreamProperties,
    UdfSpec,
    WindowContentsSpec,
)
from .plan import Deployment, InstalledStream


def operator_to_dict(spec: OperatorSpec) -> Dict[str, Any]:
    """One operator spec as a JSON-compatible dict."""
    if isinstance(spec, SelectionSpec):
        return {"kind": "selection", "predicate": spec.graph.describe()}
    if isinstance(spec, ProjectionSpec):
        return {
            "kind": "projection",
            "outputs": sorted(str(p) for p in spec.output_elements),
            "referenced": sorted(str(p) for p in spec.referenced_elements),
        }
    if isinstance(spec, AggregationSpec):
        return {
            "kind": "aggregation",
            "function": spec.function,
            "element": str(spec.aggregated_path),
            "window": str(spec.window),
            "pre_selection": spec.pre_selection.describe(),
            "result_filter": spec.result_filter.describe(),
        }
    if isinstance(spec, ReAggregationSpec):
        return {
            "kind": "reaggregation",
            "reused_window": str(spec.reused.window),
            "new_window": str(spec.new.window),
            "function": spec.new.function,
        }
    if isinstance(spec, WindowContentsSpec):
        return {"kind": "window", "window": str(spec.window)}
    if isinstance(spec, UdfSpec):
        return {"kind": "udf", "name": spec.name, "parameters": list(spec.parameters)}
    if isinstance(spec, RestructureSpec):
        return {"kind": "restructure", "query": spec.query_name}
    return {"kind": spec.kind}


def content_to_dict(content: StreamProperties) -> Dict[str, Any]:
    return {
        "input_stream": content.stream,
        "item_path": str(content.item_path),
        "operators": [operator_to_dict(op) for op in content.operators],
    }


def stream_to_dict(stream: InstalledStream) -> Dict[str, Any]:
    return {
        "id": stream.stream_id,
        "origin": stream.origin_node,
        "route": list(stream.route),
        "parent": stream.parent_id,
        "query": stream.query,
        "pipeline": [operator_to_dict(op) for op in stream.pipeline],
        "content": content_to_dict(stream.content),
    }


def deployment_to_dict(deployment: Deployment) -> Dict[str, Any]:
    """The whole deployment as a JSON-compatible dict."""
    return {
        "super_peers": [
            {
                "name": peer.name,
                "capacity": peer.capacity,
                "pindex": peer.pindex,
                "used_load_fraction": deployment.usage.used_load_fraction(peer.name),
            }
            for peer in deployment.net.super_peers()
        ],
        "links": [
            {
                "ends": list(link.ends),
                "bandwidth": link.bandwidth,
                "used_bandwidth_fraction": deployment.usage.used_bandwidth_fraction(link),
            }
            for link in deployment.net.links()
        ],
        "streams": [stream_to_dict(s) for s in deployment.streams.values()],
        "subscriptions": [
            {
                "name": record.name,
                "subscriber": record.subscriber_node,
                "delivered": [
                    {"input": input_stream, "stream": stream_id}
                    for input_stream, stream_id in record.delivered
                ],
            }
            for record in deployment.queries.values()
        ],
    }


def deployment_to_json(deployment: Deployment, indent: int = 2) -> str:
    """Serialize the deployment as JSON text."""
    return json.dumps(deployment_to_dict(deployment), indent=indent, sort_keys=True)
