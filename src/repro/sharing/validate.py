"""Deployment invariant checking.

A deployment mutates incrementally — every registration installs
streams, widening rewrites them in place — so this module provides an
independent auditor used by tests, benches, and operators:

* **routing** — every stream's route is a connected path of existing
  links starting at its origin;
* **derivation** — every derived stream's parent exists and is
  available at the derived stream's origin node (on the parent's
  route);
* **content soundness** — every derived stream's content is actually
  producible from its parent (Algorithm 2 accepts parent → child);
* **delivery** — every registered query's delivered streams exist,
  terminate at the subscriber's super-peer, and match the query's
  per-input requirements;
* **usage ledger** — no negative committed usage.

``validate_deployment`` returns a list of human-readable violations
(empty = healthy); ``check_deployment`` raises on the first problem.
"""

from __future__ import annotations

from typing import List

from ..matching import match_stream_properties
from .plan import Deployment, InstalledStream


class DeploymentInvariantError(AssertionError):
    """Raised by :func:`check_deployment` on a violated invariant."""


def validate_deployment(deployment: Deployment) -> List[str]:
    """Audit ``deployment``; return all violations found."""
    problems: List[str] = []
    net = deployment.net

    for stream in deployment.streams.values():
        problems.extend(_check_route(deployment, stream))
        problems.extend(_check_derivation(deployment, stream))

    for record in deployment.queries.values():
        for input_stream, stream_id in record.delivered:
            delivered = deployment.streams.get(stream_id)
            if delivered is None:
                problems.append(
                    f"query {record.name}: delivered stream {stream_id!r} missing"
                )
                continue
            if delivered.target_node != record.subscriber_node:
                problems.append(
                    f"query {record.name}: stream {stream_id!r} ends at "
                    f"{delivered.target_node}, subscriber is at "
                    f"{record.subscriber_node}"
                )
            try:
                needed = record.properties.input_for(input_stream)
            except KeyError:
                problems.append(
                    f"query {record.name}: no requirement recorded for input "
                    f"{input_stream!r}"
                )
                continue
            # A delivered stream satisfies its query when it IS the
            # required content.  (Algorithm 2 alone is too strict here:
            # a stream that already applied the query's selection and
            # projected away selection-only elements equals the
            # requirement but could not serve a *fresh* copy of it.)
            if delivered.content != needed and not match_stream_properties(
                delivered.content, needed
            ):
                problems.append(
                    f"query {record.name}: delivered stream {stream_id!r} does "
                    f"not satisfy its requirement on {input_stream!r}"
                )

    for (a, b), bits in deployment.usage._link_bits.items():
        if bits < -1e-6:
            problems.append(f"usage ledger: negative traffic on {a}-{b}: {bits}")
    for peer, work in deployment.usage._peer_work.items():
        if work < -1e-6:
            problems.append(f"usage ledger: negative work on {peer}: {work}")

    del net
    return problems


def _check_route(deployment: Deployment, stream: InstalledStream) -> List[str]:
    problems: List[str] = []
    net = deployment.net
    for node in stream.route:
        if node not in net:
            problems.append(
                f"stream {stream.stream_id}: route node {node!r} does not exist"
            )
            return problems
    for a, b in stream.links():
        if not net.has_link(a, b):
            problems.append(
                f"stream {stream.stream_id}: route uses missing link {a}-{b}"
            )
    return problems


def _check_derivation(deployment: Deployment, stream: InstalledStream) -> List[str]:
    problems: List[str] = []
    if stream.parent_id is None:
        if stream.pipeline:
            problems.append(
                f"stream {stream.stream_id}: original streams carry no pipeline"
            )
        return problems
    parent = deployment.streams.get(stream.parent_id)
    if parent is None:
        problems.append(
            f"stream {stream.stream_id}: parent {stream.parent_id!r} missing"
        )
        return problems
    if stream.origin_node not in parent.route:
        problems.append(
            f"stream {stream.stream_id}: taps {stream.parent_id!r} at "
            f"{stream.origin_node}, which is not on the parent's route"
        )
    if parent.content.stream != stream.content.stream:
        problems.append(
            f"stream {stream.stream_id}: original input stream changed along "
            f"the derivation ({parent.content.stream!r} → {stream.content.stream!r})"
        )
    # The parent must be able to answer the child's content — otherwise
    # the child's pipeline cannot have produced it.
    if not match_stream_properties(parent.content, stream.content):
        problems.append(
            f"stream {stream.stream_id}: content is not derivable from parent "
            f"{stream.parent_id!r} (Algorithm 2 rejects the pair)"
        )
    return problems


def check_deployment(deployment: Deployment) -> None:
    """Raise :class:`DeploymentInvariantError` on the first violation."""
    problems = validate_deployment(deployment)
    if problems:
        raise DeploymentInvariantError("; ".join(problems))
