"""Query deregistration and stream garbage collection.

The paper registers continuous queries incrementally and notes they
"usually remain registered over long periods of time" — but every
subscription eventually ends.  Deregistration must respect sharing: a
stream created for one query may meanwhile serve others, so tear-down
is reference-counted:

1. the query record is removed;
2. every stream is *live* iff some remaining query's delivery uses it,
   or a live stream derives from it (transitively), or it is an
   original registered source stream;
3. dead streams are removed and their estimated resource commitments
   are released from the usage ledger (traffic on their routes,
   pipeline/duplicate/transfer work, the query's restructuring work).

Released usage is recomputed with the same estimators that committed
it, so the ledger returns to exactly what a fresh registration of the
remaining queries would have committed (covered by tests).
"""

from __future__ import annotations

from typing import List, Set

from ..costmodel import PlanEffects, base_load
from .plan import Deployment, InstalledStream
from .planner import Planner


class DeregistrationError(Exception):
    """Raised for unknown queries."""


def live_stream_ids(deployment: Deployment) -> Set[str]:
    """Streams still needed: delivery roots plus all their ancestors,
    plus original source streams."""
    live: Set[str] = set()
    pending: List[str] = []
    for stream in deployment.streams.values():
        if stream.is_original:
            live.add(stream.stream_id)
    for record in deployment.queries.values():
        for _, stream_id in record.delivered:
            pending.append(stream_id)
    while pending:
        stream_id = pending.pop()
        if stream_id in live:
            continue
        live.add(stream_id)
        stream = deployment.streams.get(stream_id)
        if stream is not None and stream.parent_id is not None:
            pending.append(stream.parent_id)
    return live


class Deregistrar:
    """Removes queries and garbage-collects their streams."""

    def __init__(self, planner: Planner) -> None:
        self.planner = planner

    # ------------------------------------------------------------------
    def deregister(self, deployment: Deployment, query_name: str) -> List[str]:
        """Remove ``query_name``; return the ids of removed streams."""
        record = deployment.queries.pop(query_name, None)
        if record is None:
            raise DeregistrationError(f"unknown query {query_name!r}")

        # Release the query's own post-processing load.
        release = PlanEffects()
        for _, stream_id in record.delivered:
            stream = deployment.streams.get(stream_id)
            if stream is None:
                continue
            rate = self.planner.stream_rate(stream.content)
            self._charge(release, record.subscriber_node, "restructure", rate.frequency)

        removed = self._collect_garbage(deployment, release)
        self._apply_release(deployment, release)
        return removed

    # ------------------------------------------------------------------
    def _collect_garbage(
        self, deployment: Deployment, release: PlanEffects
    ) -> List[str]:
        removed: List[str] = []
        while True:
            live = live_stream_ids(deployment)
            # Sorted by id: release/removal order (and with it the
            # reported removal list) must not depend on dict insertion
            # order, so indexed and brute-force registrations — which
            # install streams in different orders — tear down
            # identically.
            dead = sorted(
                (
                    stream
                    for stream in deployment.streams.values()
                    if stream.stream_id not in live
                ),
                key=lambda stream: stream.stream_id,
            )
            if not dead:
                return removed
            # Release every dead stream before deleting any: releasing a
            # derived stream needs its parent's rate, and the parent may
            # itself be dead in the same sweep.
            for stream in dead:
                self._release_stream(deployment, stream, release)
            for stream in dead:
                if deployment.release_stream(stream.stream_id):
                    removed.append(stream.stream_id)

    def _release_stream(
        self, deployment: Deployment, stream: InstalledStream, release: PlanEffects
    ) -> None:
        """Estimated commitments of one stream, mirroring the planner."""
        net = self.planner.net
        rate = self.planner.stream_rate(stream.content)

        # Route traffic and forwarding work.  Lookups include removed
        # peers/links: plan repair tears down streams whose routes
        # crossed a crashed peer, and their commitments — estimated
        # against the pre-fault topology — must still be released.
        for a, b in stream.links():
            release.add_link(net.link(a, b, include_removed=True), rate.bits_per_second)
        for sender in stream.route[:-1]:
            self._charge(release, sender, "transfer", rate.frequency)

        # Tap duplication and pipeline work at the origin.
        parent = (
            deployment.streams.get(stream.parent_id)
            if stream.parent_id is not None
            else None
        )
        if parent is not None:
            parent_rate = self.planner.stream_rate(parent.content)
            # The planner charges one tap duplication per input chain, at
            # the node where the chain taps the reused stream.  Only the
            # chain's first stream pays it back: a stream consuming its
            # own plan's relay does not duplicate again.
            if parent.is_original or parent.query != stream.query:
                self._charge(
                    release, stream.origin_node, "duplicate", parent_rate.frequency
                )
            frequency = parent_rate.frequency
            for spec in stream.pipeline:
                self._charge(release, stream.origin_node, spec.kind, frequency)
                frequency = self.planner._stage_output_frequency(
                    spec, stream.content, frequency, rate.frequency
                )

    def _apply_release(self, deployment: Deployment, release: PlanEffects) -> None:
        for link, bits in release.link_bits.items():
            deployment.usage.add_link_traffic(link, -bits)
        for peer, work in release.peer_work.items():
            deployment.usage.add_peer_work(peer, -work)

    def _charge(
        self, effects: PlanEffects, node: str, kind: str, frequency: float
    ) -> None:
        peer = self.planner.net.super_peer(node, include_removed=True)
        effects.add_peer(node, base_load(kind) * peer.pindex * frequency)
