"""Explanations of registration decisions, human- and machine-readable.

``explain_registration`` renders what Algorithm 1 decided for a
subscription — which stream it reuses, where compensation operators
run, how the result is routed, what the search looked at — in the
vocabulary of the paper.  Used by examples and by operators debugging a
deployment; the output format is covered by tests so it can be relied
on in scripts.

``decision_record`` is the machine-readable counterpart: a plain-dict
"why this plan" record (reused stream, placement, compensation,
chosen vs. initial cost, search telemetry) that the observability
layer attaches to every registration as a structured
``plan.decision`` event (DESIGN.md §10).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..properties import (
    AggregationSpec,
    OperatorSpec,
    ProjectionSpec,
    ReAggregationSpec,
    SelectionSpec,
    UdfSpec,
    WindowContentsSpec,
)
from .plan import Deployment, InputPlan
from .subscribe import RegistrationResult


def describe_operator(spec: OperatorSpec) -> str:
    """One line describing a compensation operator."""
    if isinstance(spec, SelectionSpec):
        return f"selection σ: {spec.graph.describe()}"
    if isinstance(spec, ProjectionSpec):
        outputs = ", ".join(sorted(str(p) for p in spec.output_elements))
        return f"projection π: keep {outputs}"
    if isinstance(spec, AggregationSpec):
        return f"window aggregation Φ: {spec}"
    if isinstance(spec, ReAggregationSpec):
        ratio = spec.new.window.windows_per_new_window(spec.reused.window)
        return (
            f"re-aggregation ρ: merge {ratio} reused window(s) "
            f"{spec.reused.window} into {spec.new.window}"
        )
    if isinstance(spec, WindowContentsSpec):
        return f"windowing ω: emit contents of {spec.window}"
    if isinstance(spec, UdfSpec):
        return f"user-defined operator: {spec}"
    return str(spec)


def explain_input_plan(plan: InputPlan, deployment: Deployment) -> List[str]:
    """Explanation lines for one input stream's plan."""
    lines: List[str] = []
    reused = deployment.streams.get(plan.reused_id)
    if reused is not None and reused.is_original:
        lines.append(
            f"input '{plan.input_stream}': uses the original stream at "
            f"{plan.tap_node}"
        )
    else:
        owner = f" (created for {reused.query})" if reused and reused.query else ""
        lines.append(
            f"input '{plan.input_stream}': SHARES stream '{plan.reused_id}'"
            f"{owner}, duplicated at {plan.tap_node}"
        )
    if plan.widening is not None:
        lines.append(
            f"  the reused stream was WIDENED in place "
            f"(now: {plan.widening.widened_content})"
        )
    if plan.relay is not None:
        lines.append(
            f"  relayed unmodified along {' -> '.join(plan.relay.route)}"
        )
    if plan.delivered.pipeline:
        lines.append(f"  compensation at {plan.placement_node}:")
        for spec in plan.delivered.pipeline:
            lines.append(f"    - {describe_operator(spec)}")
    else:
        lines.append("  exact reuse: no compensation operators needed")
    if len(plan.delivered.route) > 1:
        lines.append(
            f"  result routed {' -> '.join(plan.delivered.route)}"
        )
    lines.append(f"  estimated plan cost C = {plan.cost:.6f}")
    return lines


def explain_registration(
    result: RegistrationResult, deployment: Deployment
) -> str:
    """Full explanation of one subscription's registration outcome."""
    lines: List[str] = [f"subscription '{result.query}':"]
    if not result.accepted:
        lines.append(f"  REJECTED — {result.rejection_reason}")
        lines.append(f"  registration took {result.registration_ms:.0f} ms (simulated)")
        return "\n".join(lines)
    assert result.plan is not None
    for plan in result.plan.inputs:
        for line in explain_input_plan(plan, deployment):
            lines.append(f"  {line}")
    lines.append(
        f"  post-processing (restructuring) at the subscriber's super-peer; "
        f"its output is not reused"
    )
    lines.append(
        f"  search visited {result.plan.visited_nodes} node(s), "
        f"matched {result.plan.candidate_matches} candidate propertie(s); "
        f"registration took {result.registration_ms:.0f} ms (simulated)"
    )
    return "\n".join(lines)


def _input_plan_record(plan: InputPlan, deployment: Deployment) -> Dict[str, Any]:
    reused = deployment.streams.get(plan.reused_id)
    shares = reused is not None and not reused.is_original
    record: Dict[str, Any] = {
        "input_stream": plan.input_stream,
        "reused_id": plan.reused_id,
        "shares_existing_stream": shares,
        "reused_owner": reused.query if reused is not None else None,
        "tap_node": plan.tap_node,
        "placement_node": plan.placement_node,
        "relay_route": list(plan.relay.route) if plan.relay is not None else None,
        "delivery_route": list(plan.delivered.route),
        "compensation": [describe_operator(spec) for spec in plan.delivered.pipeline],
        "widened": plan.widening is not None,
        "cost": plan.cost,
        "initial_cost": plan.initial_cost,
    }
    if plan.initial_cost is not None:
        record["saving_vs_initial"] = plan.initial_cost - plan.cost
    return record


def decision_record(
    result: RegistrationResult, deployment: Deployment
) -> Dict[str, Any]:
    """Machine-readable "why this plan" record for one registration.

    JSON-serializable by construction; the explanation mirrors
    :func:`explain_registration` field for field, so both views of a
    decision always agree.
    """
    record: Dict[str, Any] = {
        "query": result.query,
        "accepted": result.accepted,
        "registration_ms": result.registration_ms,
    }
    if not result.accepted:
        record["rejection_reason"] = result.rejection_reason
    plan = result.plan
    if plan is not None:
        record.update(
            {
                "total_cost": plan.total_cost(),
                "visited_nodes": plan.visited_nodes,
                "candidate_matches": plan.candidate_matches,
                "reused_streams": sorted(
                    p.reused_id
                    for p in plan.inputs
                    if (s := deployment.streams.get(p.reused_id)) is not None
                    and not s.is_original
                ),
                "inputs": [_input_plan_record(p, deployment) for p in plan.inputs],
            }
        )
    return record


def explain_deployment(deployment: Deployment) -> str:
    """Summary of every stream currently flowing in the network."""
    lines = ["deployed streams:"]
    for stream in deployment.streams.values():
        origin = "original" if stream.is_original else f"from {stream.parent_id}"
        ops = ", ".join(op.kind for op in stream.pipeline) or "none"
        lines.append(
            f"  {stream.stream_id}: {origin}, at {stream.origin_node}, "
            f"route {' -> '.join(stream.route)}, operators: {ops}"
        )
    lines.append(f"registered subscriptions: {', '.join(deployment.queries) or 'none'}")
    return "\n".join(lines)
