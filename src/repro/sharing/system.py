"""The StreamGlobe facade: one object tying the whole system together.

Typical use (see ``examples/quickstart.py``)::

    system = StreamGlobe(example_topology(), strategy="stream-sharing")
    system.register_stream("photons", "photons/photon",
                           lambda: PhotonGenerator(config), source_peer="P0")
    result = system.register_query("Q1", QUERY_TEXT, subscriber_peer="P1")
    metrics = system.run(duration=60.0)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..costmodel import (
    CostModel,
    LatencyModel,
    StatisticsCatalog,
    StreamStatistics,
)
from ..engine import RunMetrics, StreamSimulator
from ..engine.executor import ItemGenerator
from ..network.topology import Network
from ..obs.recorder import default_recorder
from ..properties import StreamProperties, extract_from_analysis, raw_stream_properties
from ..wxquery import Query, analyze, parse_query
from ..xmlkit import Path
from .plan import Deployment, InstalledStream
from .planner import Planner
from .strategies import StrategyRegistrar
from .subscribe import RegistrationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..analysis.shards import ShardPlan
    from ..engine.parallel import ShardedSimulator
    from ..faults import FaultEvent
    from .repair import RepairReport

#: Number of sample items used to build a stream's statistics entry.
STATISTICS_SAMPLE_SIZE = 400


@dataclass
class SourceRegistration:
    """Bookkeeping for one registered original data stream."""

    name: str
    item_path: Path
    home_node: str
    frequency: float
    generator_factory: Callable[[], ItemGenerator] = field(repr=False)


class StreamGlobe:
    """A super-peer DSMS network with incremental query registration."""

    def __init__(
        self,
        net: Network,
        strategy: str = "stream-sharing",
        gamma: float = 0.5,
        match_mode: str = "edgewise",
        search_order: str = "bfs",
        admission_control: bool = False,
        share_aggregates: bool = True,
        enable_widening: bool = False,
        use_index: bool = True,
        latency_model: Optional[LatencyModel] = None,
        verify: bool = False,
        recorder: Optional[object] = None,
    ) -> None:
        self.net = net
        self.verify = verify
        #: Observability sink, owned per system (never shared between
        #: systems — benchmark baselines must not pollute each other's
        #: series, exactly like the MatchMemo ownership rule).  Defaults
        #: to the no-op singleton unless REPRO_OBS_TRACE is set.
        self.recorder = recorder if recorder is not None else default_recorder()
        self.catalog = StatisticsCatalog()
        self.cost_model = CostModel(net, gamma=gamma)
        self.planner = Planner(
            net, self.catalog, self.cost_model, latency_model, recorder=self.recorder
        )
        self.registrar = StrategyRegistrar(
            self.planner,
            strategy,
            match_mode=match_mode,
            search_order=search_order,
            admission_control=admission_control,
            share_aggregates=share_aggregates,
            enable_widening=enable_widening,
            use_index=use_index,
        )
        self.deployment = Deployment(net)
        self.sources: Dict[str, SourceRegistration] = {}
        self.results: List[RegistrationResult] = []
        self._repairer = None  # lazily created PlanRepairer

    # ------------------------------------------------------------------
    # Stream registration
    # ------------------------------------------------------------------
    def register_stream(
        self,
        name: str,
        item_path: Union[str, Path],
        generator_factory: Callable[[], ItemGenerator],
        frequency: float,
        source_peer: str,
    ) -> None:
        """Register an original data stream delivered by a thin-peer.

        ``generator_factory`` must return a *fresh, identically seeded*
        generator on every call: one instance samples the statistics
        catalog, later instances drive executions.
        """
        if name in self.sources:
            raise ValueError(f"stream {name!r} already registered")
        path = item_path if isinstance(item_path, Path) else Path(item_path)
        home = self.net.home_of(source_peer)

        sample_generator = generator_factory()
        sample = [sample_generator.next_item() for _ in range(STATISTICS_SAMPLE_SIZE)]
        self.catalog.register(
            StreamStatistics.from_sample(name, path, sample, frequency)
        )

        self.sources[name] = SourceRegistration(
            name=name,
            item_path=path,
            home_node=home,
            frequency=frequency,
            generator_factory=generator_factory,
        )
        self.deployment.install_stream(
            InstalledStream(
                stream_id=name,
                content=raw_stream_properties(name, path).single_input(),
                origin_node=home,
                route=(home,),
            )
        )

    # ------------------------------------------------------------------
    # Programmatic derived streams (user-defined operators)
    # ------------------------------------------------------------------
    def install_derived_stream(
        self,
        stream_id: str,
        parent_id: str,
        pipeline,
        target: str,
        tap_node: Optional[str] = None,
    ) -> InstalledStream:
        """Install an administratively deployed derived stream.

        The WXQuery fragment cannot express user-defined operators
        (Definition 2.1), but the properties/matching machinery supports
        them (Algorithm 2's unknown-operator case).  This method is the
        deployment path for such streams: ``pipeline`` is a sequence of
        operator specs (typically ending in a
        :class:`~repro.properties.UdfSpec`), applied at ``tap_node``
        (default: the parent stream's origin) and routed to ``target``.

        Returns the installed stream; it participates in sharing like
        any query-generated stream.
        """
        parent = self.deployment.stream(parent_id)
        origin = tap_node or parent.origin_node
        if origin not in parent.route:
            raise ValueError(
                f"tap node {origin!r} is not on the route of {parent_id!r}"
            )
        content = StreamProperties(
            stream=parent.content.stream,
            item_path=parent.content.item_path,
            operators=parent.content.operators + tuple(pipeline),
        )
        stream = InstalledStream(
            stream_id=stream_id,
            content=content,
            origin_node=origin,
            route=self.planner.routes.path(origin, self.net.home_of(target)),
            parent_id=parent_id,
            pipeline=tuple(pipeline),
        )
        self.deployment.install_stream(stream)
        self._commit_installed_effects(stream)
        self._preflight(f"after installing derived stream {stream_id!r}")
        return stream

    def _commit_installed_effects(self, stream: InstalledStream) -> None:
        """Commit a hand-installed stream's estimated resource usage.

        Query registration commits effects through the planner; streams
        installed directly (user-defined operators) must account for the
        same traffic and work, or the ``a_b``/``a_l`` bookkeeping — and
        with it every later placement decision — drifts from reality.
        Mirrors :meth:`Deregistrar._release_stream` so deregistration
        returns the ledger to zero.
        """
        from ..costmodel import PlanEffects, base_load

        effects = PlanEffects()
        rate = self.planner.stream_rate(stream.content)

        def charge(node: str, kind: str, frequency: float) -> None:
            peer = self.net.super_peer(node)
            effects.add_peer(node, base_load(kind) * peer.pindex * frequency)

        for a, b in stream.links():
            effects.add_link(self.net.link(a, b), rate.bits_per_second)
        for sender in stream.route[:-1]:
            charge(sender, "transfer", rate.frequency)

        parent = (
            self.deployment.streams.get(stream.parent_id)
            if stream.parent_id is not None
            else None
        )
        if parent is not None:
            parent_rate = self.planner.stream_rate(parent.content)
            charge(stream.origin_node, "duplicate", parent_rate.frequency)
            frequency = parent_rate.frequency
            for spec in stream.pipeline:
                charge(stream.origin_node, spec.kind, frequency)
                frequency = self.planner._stage_output_frequency(
                    spec, stream.content, frequency, rate.frequency
                )
        self.deployment.commit_effects(effects)

    # ------------------------------------------------------------------
    # Static verification
    # ------------------------------------------------------------------
    def _preflight(self, context: str) -> None:
        """Run the static analysis passes when ``verify=True``.

        Three passes gate every plan mutation: the P1xx/T2xx plan
        verifier, the F4xx flow analyzer, and the S5xx shard certifier
        (the latter two span-traced through the system's recorder).
        Raises :class:`~repro.analysis.InvariantViolation` carrying the
        merged report if any pass finds an error.
        """
        if not self.verify:
            return
        # Imported lazily: repro.analysis depends on repro.sharing.plan.
        from ..analysis import (
            InvariantViolation,
            analyze_flow,
            certify_shards,
            verify_deployment,
        )

        report = verify_deployment(
            self.deployment, catalog=self.catalog, title=f"pre-flight {context}"
        )
        report.merge(
            analyze_flow(
                self.deployment,
                self.catalog,
                title=f"flow pre-flight {context}",
                recorder=self.recorder,
            )
        )
        _, shard_report = certify_shards(
            self.deployment,
            self.catalog,
            title=f"shards pre-flight {context}",
            recorder=self.recorder,
        )
        report.merge(shard_report)
        if not report.ok:
            raise InvariantViolation(context, report)

    def shard_plan(self) -> "ShardPlan":
        """The certified :class:`~repro.analysis.ShardPlan` of the
        current deployment, cached per plan state.

        The cache key fingerprints the topology version plus the
        installed stream and query sets, so any plan mutation — a
        registration, a deregistration, or a fault repair (which bumps
        :attr:`Network.version`) — invalidates the certificate.
        """
        from ..analysis import certify_shards

        fingerprint = (
            self.net.version,
            tuple(sorted(self.deployment.streams)),
            tuple(sorted(self.deployment.queries)),
        )
        cached = getattr(self, "_shard_plan_cache", None)
        if cached is not None and cached[0] == fingerprint:
            return cached[1]
        plan, _ = certify_shards(
            self.deployment, self.catalog, recorder=self.recorder
        )
        self._shard_plan_cache = (fingerprint, plan)
        return plan

    def find_shareable_streams(self, needed: StreamProperties):
        """All installed streams whose content can answer ``needed``."""
        from ..matching import match_stream_properties

        return [
            stream
            for stream in self.deployment.streams.values()
            if match_stream_properties(stream.content, needed)
        ]

    # ------------------------------------------------------------------
    # Query registration
    # ------------------------------------------------------------------
    def register_query(
        self,
        name: str,
        query: Union[str, Query],
        subscriber_peer: str,
    ) -> RegistrationResult:
        """Register a continuous WXQuery subscription.

        Returns the registration result; capacity rejections (with
        admission control enabled) are reported, not raised.
        """
        recorder = self.recorder
        with recorder.span("register", query=name, strategy=self.registrar.strategy) as span:
            with recorder.span("parse"):
                parsed = parse_query(query) if isinstance(query, str) else query
            with recorder.span("analyze"):
                analyzed = analyze(parsed)
                properties = extract_from_analysis(analyzed, name)
            subscriber_node = self.net.home_of(subscriber_peer)
            with recorder.span("plan"):
                result = self.registrar.register(
                    self.deployment, properties, analyzed, subscriber_node
                )
            if recorder.enabled:
                span.set(accepted=result.accepted)
        self.results.append(result)
        self._record_decision(result)
        self._preflight(f"after registering query {name!r}")
        return result

    def register_queries(
        self,
        batch: Sequence[Tuple[str, Union[str, Query], str]],
    ) -> List[RegistrationResult]:
        """Batch admission: register many subscriptions in one call.

        ``batch`` is a sequence of ``(name, query, subscriber_peer)``
        entries.  Compared to a loop over :meth:`register_query`, batch
        admission

        * parses and analyzes each *distinct* query text once,
        * admits the batch most-general-first
          (:func:`~repro.sharing.index.admission_order_key`), so broad
          subscriptions install the streams the narrow ones then tap —
          maximizing intra-batch sharing regardless of caller order,
        * runs the (optional) verification pre-flight once per batch
          instead of once per query.

        Results are returned in the *caller's* order.  Admission order
        is an optimization heuristic only — every plan is still chosen
        by the same cost-based search, and each registration sees all
        previously admitted streams.
        """
        names = [name for name, _, _ in batch]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate query name(s) in batch: {', '.join(sorted(duplicates))}"
            )

        from .index import admission_order_key

        parsed_cache: Dict[str, Query] = {}
        analyzed_cache: Dict[int, object] = {}
        prepared = []
        for name, query, subscriber_peer in batch:
            if isinstance(query, str):
                parsed = parsed_cache.get(query)
                if parsed is None:
                    parsed = parse_query(query)
                    parsed_cache[query] = parsed
            else:
                parsed = query
            analyzed = analyzed_cache.get(id(parsed))
            if analyzed is None:
                analyzed = analyze(parsed)
                analyzed_cache[id(parsed)] = analyzed
            properties = extract_from_analysis(analyzed, name)
            prepared.append(
                (name, properties, analyzed, self.net.home_of(subscriber_peer))
            )

        order = sorted(
            range(len(prepared)),
            key=lambda i: admission_order_key(prepared[i][1]),
        )
        recorder = self.recorder
        by_name: Dict[str, RegistrationResult] = {}
        for i in order:
            name, properties, analyzed, subscriber_node = prepared[i]
            with recorder.span(
                "register", query=name, strategy=self.registrar.strategy, batch=True
            ) as span:
                with recorder.span("plan"):
                    result = self.registrar.register(
                        self.deployment, properties, analyzed, subscriber_node
                    )
                if recorder.enabled:
                    span.set(accepted=result.accepted)
            self.results.append(result)
            self._record_decision(result)
            by_name[name] = result
        self._preflight(f"after batch registration of {len(prepared)} queries")
        return [by_name[name] for name in names]

    def deregister_query(self, name: str) -> List[str]:
        """Remove a subscription and garbage-collect its streams.

        Streams shared with other live subscriptions survive; streams
        no subscription needs anymore are removed and their estimated
        resource commitments released.  Returns the removed stream ids.
        """
        from .deregister import Deregistrar

        with self.recorder.span("deregister", query=name) as span:
            removed = Deregistrar(self.planner).deregister(self.deployment, name)
            if self.recorder.enabled:
                span.set(removed_streams=list(removed))
        return removed

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _record_decision(self, result: RegistrationResult) -> None:
        """Emit the machine-readable "why this plan" event (traced only)."""
        if not self.recorder.enabled:
            return
        from .explain import decision_record

        record = decision_record(result, self.deployment)
        record["strategy"] = self.registrar.strategy
        self.recorder.event("plan.decision", **record)
        self._sync_cache_gauges()

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/invalidation counters of every control-plane cache.

        Always available (the counters are plain ints kept regardless of
        tracing); the same numbers feed the recorder's
        ``cache.*`` counter registry on traced systems and the bench
        reports' cache-hit-rate fields.
        """

        def rated(hits: float, misses: float, **extra: float) -> Dict[str, float]:
            total = hits + misses
            stats = {"hits": hits, "misses": misses}
            stats["hit_rate"] = hits / total if total else 0.0
            stats.update(extra)
            return stats

        routes = self.planner.routes
        stats = {
            "route": rated(
                routes.hits,
                routes.misses,
                invalidations=routes.invalidations,
                entries=len(routes),
            ),
            "rate": rated(
                self.planner.rate_cache_hits, self.planner.rate_cache_misses
            ),
        }
        memo = self.registrar.match_memo
        if memo is not None:
            stats["match"] = memo.stats()
        return stats

    def _sync_cache_gauges(self) -> None:
        """Mirror the always-on cache counters into the recorder."""
        recorder = self.recorder
        for cache, stats in self.cache_stats().items():
            for key, value in stats.items():
                if key == "hit_rate":
                    recorder.set_gauge(f"cache.{cache}.hit_rate", value)
                else:
                    recorder.counters[f"cache.{cache}.{key}"] = value
        recorder.counters["planner.plans_costed"] = self.planner.plans_costed

    # ------------------------------------------------------------------
    # Fault handling and plan repair
    # ------------------------------------------------------------------
    def plan_repairer(self):
        """The system's persistent :class:`~repro.sharing.repair.PlanRepairer`.

        Persistent so subscriptions parked as pending by one fault are
        retried after a later rejoin.
        """
        from .repair import PlanRepairer

        if self._repairer is None:
            self._repairer = PlanRepairer(self)
        return self._repairer

    def apply_fault(self, event: "FaultEvent") -> "RepairReport":
        """Apply one :class:`~repro.faults.FaultEvent` and repair the plan.

        Mutates the topology, tears down every affected stream and
        subscription, re-registers what the surviving topology can
        still serve, and (with ``verify=True``) verifies the repaired
        deployment.  Returns the :class:`~repro.sharing.repair.RepairReport`.
        """
        event.apply(self.net)
        return self.plan_repairer().repair(context=event.describe())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        duration: float,
        max_items_per_source: Optional[int] = None,
        faults=None,
        capture=None,
        workers: Optional[int] = None,
        rebalancer=None,
    ) -> RunMetrics:
        """Execute the deployed network for ``duration`` virtual seconds.

        Every call replays the sources from fresh, identically seeded
        generators, so repeated runs are bit-for-bit reproducible.

        ``faults`` — an optional :class:`~repro.faults.FaultSchedule`.
        Scheduled events are applied at their simulated times; after
        each one the plan repairer rebuilds affected subscriptions and
        the run continues on the surviving topology, with degradation
        (items lost, recovery time, re-routed traffic) reported in the
        returned :class:`RunMetrics`.  Topology and deployment changes
        persist after the run — churn is real state, not a what-if.

        ``capture`` — optional ``(query_name, result_item)`` hook
        observing every restructured result as it is delivered.

        ``workers`` — run on the sharded executor
        (:class:`~repro.engine.parallel.ShardedSimulator`) with up to
        this many worker cells, partitioned by the certified
        :meth:`shard_plan`.  ``RunMetrics`` is byte-identical to the
        sequential executor at every worker count.  Defaults to the
        ``REPRO_PARALLEL`` environment variable (worker count; unset
        or ``1`` means sequential); ``REPRO_PARALLEL_MODE`` picks the
        backend (``auto``/``process``/``inline``).

        ``rebalancer`` — an optional
        :class:`~repro.sharing.rebalance.Rebalancer` (constructed over
        *this* system).  The executor feeds it the per-epoch time
        series; on sustained load drift it migrates affected plans live
        at a quiescent epoch barrier, each migration re-running the
        verified pre-flight (``verify=True``) and, on the sharded
        executor, re-certifying the shard plan exactly like churn.
        """
        self._preflight("before execution")
        generators = {
            name: source.generator_factory() for name, source in self.sources.items()
        }
        repair = self.plan_repairer().repair if faults else None
        if workers is None:
            env = os.environ.get("REPRO_PARALLEL", "").strip()
            if env:
                try:
                    workers = int(env)
                except ValueError:
                    raise ValueError(
                        f"REPRO_PARALLEL must be a worker count, got {env!r}"
                    ) from None
        simulator: Union[StreamSimulator, "ShardedSimulator"]
        if workers is not None and workers > 1:
            from ..engine.parallel import ShardedSimulator

            simulator = ShardedSimulator(
                self.net,
                self.deployment,
                generators,
                duration,
                plan=self.shard_plan(),
                workers=workers,
                max_items_per_source=max_items_per_source,
                schedule=faults,
                repair=repair,
                replan=self.shard_plan,
                capture=capture,
                recorder=self.recorder,
                mode=os.environ.get("REPRO_PARALLEL_MODE", "auto"),
                rebalancer=rebalancer,
            )
        else:
            simulator = StreamSimulator(
                self.net,
                self.deployment,
                generators,
                duration,
                max_items_per_source=max_items_per_source,
                schedule=faults,
                repair=repair,
                capture=capture,
                recorder=self.recorder,
                rebalancer=rebalancer,
            )
        self.last_simulator = simulator
        metrics = simulator.run()
        if self.recorder.enabled:
            self._sync_cache_gauges()
        return metrics

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def accepted_queries(self) -> List[str]:
        return [r.query for r in self.results if r.accepted]

    def rejected_queries(self) -> List[str]:
        return [r.query for r in self.results if not r.accepted]

    def registration_times_ms(self) -> List[float]:
        return [r.registration_ms for r in self.results]
