"""The evaluation strategies compared in Section 4.

* **data shipping** — transmit the whole original input stream from the
  source's super-peer to the subscriber's super-peer along a shortest
  path and evaluate the complete query there, once per subscription;
* **query shipping** — evaluate the complete query at the source's
  super-peer and ship only the result (single-input queries only, as in
  the paper's experiments);
* **stream sharing** — Algorithm 1 (see :mod:`repro.sharing.subscribe`).

All three share the plan/effects machinery so the measured comparison
differs only in the decisions, not the bookkeeping.
"""

from __future__ import annotations


from ..properties import Properties
from ..wxquery import AnalyzedQuery
from .plan import Deployment, EvaluationPlan, RegisteredQuery
from .planner import Planner, PlanningError
from .subscribe import RegistrationResult, Subscriber

STRATEGIES = ("data-shipping", "query-shipping", "stream-sharing")


class StrategyRegistrar:
    """Registers subscriptions under one of the three strategies."""

    def __init__(
        self,
        planner: Planner,
        strategy: str,
        match_mode: str = "edgewise",
        search_order: str = "bfs",
        admission_control: bool = False,
        share_aggregates: bool = True,
        enable_widening: bool = False,
        use_index: bool = True,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; pick one of {STRATEGIES}")
        self.planner = planner
        self.strategy = strategy
        self.admission_control = admission_control
        self._subscriber = Subscriber(
            planner,
            match_mode=match_mode,
            search_order=search_order,
            admission_control=admission_control,
            share_aggregates=share_aggregates,
            enable_widening=enable_widening,
            use_index=use_index,
        )

    @property
    def match_memo(self):
        """The subscriber's :class:`~repro.matching.MatchMemo` (or ``None``)."""
        return self._subscriber.match_memo

    # ------------------------------------------------------------------
    def register(
        self,
        deployment: Deployment,
        properties: Properties,
        analyzed: AnalyzedQuery,
        subscriber_node: str,
    ) -> RegistrationResult:
        if self.strategy == "stream-sharing":
            return self._subscriber.subscribe(
                deployment, properties, analyzed, subscriber_node
            )
        return self._register_fixed(deployment, properties, analyzed, subscriber_node)

    # ------------------------------------------------------------------
    def _register_fixed(
        self,
        deployment: Deployment,
        properties: Properties,
        analyzed: AnalyzedQuery,
        subscriber_node: str,
    ) -> RegistrationResult:
        """Data/query shipping: one fixed plan, no search."""
        placement = "target" if self.strategy == "data-shipping" else "tap"
        plan = EvaluationPlan(query=properties.name)
        for subscription_input in properties.input_streams():
            try:
                original = deployment.find_original(subscription_input.stream)
            except KeyError as exc:
                raise PlanningError(str(exc)) from None
            candidates = self.planner.plans_for_candidate(
                deployment,
                original,
                original.origin_node,
                subscription_input,
                properties.name,
                subscriber_node,
                placements=(placement,),
            )
            plan.inputs.append(candidates[0])

        latency = self.planner.latency_model.registration_time_ms(
            visited_nodes=0,
            candidate_matches=0,
            installed_operators=plan.installed_operator_count(),
            route_hops=plan.route_hop_count(),
        )

        if self.admission_control:
            effects = plan.combined_effects()
            if self.planner.cost_model.overloads(effects, deployment.usage):
                return RegistrationResult(
                    query=properties.name,
                    accepted=False,
                    plan=plan,
                    registration_ms=latency,
                    rejection_reason="plan overloads a peer or connection",
                )

        self._commit(deployment, plan, properties, analyzed, subscriber_node)
        return RegistrationResult(
            query=properties.name, accepted=True, plan=plan, registration_ms=latency
        )

    def _commit(
        self,
        deployment: Deployment,
        plan: EvaluationPlan,
        properties: Properties,
        analyzed: AnalyzedQuery,
        subscriber_node: str,
    ) -> None:
        delivered = []
        for input_plan in plan.inputs:
            for stream in input_plan.new_streams():
                deployment.install_stream(stream)
            delivered.append((input_plan.input_stream, input_plan.delivered.stream_id))
        deployment.commit_effects(plan.combined_effects())
        deployment.register_query(
            RegisteredQuery(
                name=properties.name,
                properties=properties,
                analyzed=analyzed,
                subscriber_node=subscriber_node,
                delivered=tuple(delivered),
            )
        )
