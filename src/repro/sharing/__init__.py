"""Data stream sharing: plans, Algorithm 1, strategies, the facade."""

from .plan import (
    Deployment,
    EvaluationPlan,
    InputPlan,
    InstalledStream,
    RegisteredQuery,
)
from .planner import Planner, PlanningError, derive_compensation
from .strategies import STRATEGIES, StrategyRegistrar
from .subscribe import RegistrationResult, Subscriber
from .system import StreamGlobe
from .deregister import Deregistrar, DeregistrationError, live_stream_ids
from .explain import explain_deployment, explain_registration
from .rebalance import HotPeerCostModel, MigrationReport, Rebalancer
from .repair import PlanRepairer, RepairReport
from .export import deployment_to_dict, deployment_to_json
from .validate import DeploymentInvariantError, check_deployment, validate_deployment
from .widening import WideningAction, WideningPlanner, widen_content

__all__ = [
    "Deployment",
    "EvaluationPlan",
    "HotPeerCostModel",
    "InputPlan",
    "InstalledStream",
    "MigrationReport",
    "PlanRepairer",
    "Planner",
    "PlanningError",
    "Rebalancer",
    "RegisteredQuery",
    "RepairReport",
    "RegistrationResult",
    "STRATEGIES",
    "StrategyRegistrar",
    "StreamGlobe",
    "Subscriber",
    "WideningAction",
    "WideningPlanner",
    "Deregistrar",
    "DeregistrationError",
    "DeploymentInvariantError",
    "check_deployment",
    "deployment_to_dict",
    "deployment_to_json",
    "derive_compensation",
    "explain_deployment",
    "explain_registration",
    "live_stream_ids",
    "validate_deployment",
    "widen_content",
]
