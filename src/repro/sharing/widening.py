"""Stream widening — the paper's announced enhancement (Section 6).

"We are currently working on an enhanced version of the approach ...
able to ... widen data streams.  This enables the system to consider
data streams for sharing that initially do not contain all the
necessary data for a new query but can be altered to do so by changing
some operators in the network."

Given a candidate stream whose properties do *not* match a new
subscription (its selection is too tight, or its projection dropped
elements the subscription references), widening replaces the operators
that produce the stream with weaker ones:

* the **selection hull** keeps exactly the atomic constraints common to
  both predicates, each at the looser bound — implied by both queries,
  so the widened stream is a superset of both needs;
* the **projection union** outputs the union of both element sets.

Because every existing consumer of the widened stream suddenly sees a
superset, widening also rewrites their compensation pipelines and —
for subscriptions that consumed the stream *directly* — inserts a
restoring pipeline at their super-peer, so delivered results stay
bit-identical.  All of that is costed as a delta against the cost
function ``C`` and competes with ordinary plans inside Algorithm 1.

Widening is restricted to selection/projection streams; aggregate,
window, and UDF streams are never widened (their consumers' semantics
are tied to the exact operator conditions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..costmodel import PlanEffects, base_load, estimate_stream_rate
from ..matching import match_stream_properties
from ..predicates import PredicateGraph
from ..properties import (
    OperatorSpec,
    ProjectionSpec,
    SelectionSpec,
    StreamProperties,
)
from .plan import Deployment, InstalledStream, RegisteredQuery
from .planner import Planner, derive_compensation


# ----------------------------------------------------------------------
# Content widening
# ----------------------------------------------------------------------
def widen_selection(
    existing: Optional[SelectionSpec], needed: Optional[SelectionSpec]
) -> Optional[SelectionSpec]:
    """The loosest selection implied by both predicates (their hull).

    Keeps an edge only when *both* graphs constrain the same pair, at
    the looser of the two bounds.  Returns ``None`` (no selection) when
    either side has no selection — the widened stream must then carry
    every item.
    """
    if existing is None or needed is None:
        return None
    hull = PredicateGraph()
    needed_edges = needed.graph.edges
    for (source, target), bound in existing.graph.edges.items():
        other = needed_edges.get((source, target))
        if other is None:
            continue
        hull.add_edge(source, target, bound if other.implies(bound) else other)
    if hull.is_empty():
        return None
    return SelectionSpec(hull)


def widen_projection(
    existing: Optional[ProjectionSpec], needed: Optional[ProjectionSpec]
) -> Optional[ProjectionSpec]:
    """The union projection, or ``None`` when either side needs whole items."""
    if existing is None or needed is None:
        return None
    return ProjectionSpec(
        output_elements=existing.output_elements | needed.output_elements,
        referenced_elements=existing.referenced_elements | needed.referenced_elements,
    )


def widen_content(
    existing: StreamProperties, needed: StreamProperties
) -> Optional[StreamProperties]:
    """Widened stream content serving both ``existing`` and ``needed``.

    Returns ``None`` when the streams are incompatible or widening is
    not applicable (aggregates/windows/UDFs, or nothing would change).
    """
    if existing.stream != needed.stream or existing.item_path != needed.item_path:
        return None
    plain_kinds = {"selection", "projection"}
    if any(op.kind not in plain_kinds for op in existing.operators):
        return None
    if any(op.kind not in plain_kinds for op in needed.operators):
        return None

    operators: List[OperatorSpec] = []
    selection = widen_selection(existing.selection, needed.selection)
    if selection is not None:
        operators.append(selection)
    projection = widen_projection(existing.projection, needed.projection)
    if projection is not None:
        operators.append(projection)

    widened = StreamProperties(
        stream=existing.stream,
        item_path=existing.item_path,
        operators=tuple(operators),
    )
    if widened.operators == existing.operators:
        return None  # nothing widens: the existing stream already matched
    # Sanity: the widened stream must serve both parties.
    if not match_stream_properties(widened, existing):
        return None
    if not match_stream_properties(widened, needed):
        return None
    return widened


# ----------------------------------------------------------------------
# Widening actions
# ----------------------------------------------------------------------
@dataclass
class DeliveryRestore:
    """A restoring stream for a subscription that consumed the widened
    stream directly: re-applies the original content at the target."""

    query: str
    input_stream: str
    old_stream_id: str
    restore: InstalledStream


@dataclass
class WideningAction:
    """Everything a committed widening changes in the deployment."""

    stream_id: str
    widened_content: StreamProperties
    widened_pipeline: Tuple[OperatorSpec, ...]
    #: Child stream id → its recomputed compensation pipeline.
    consumer_pipelines: Dict[str, Tuple[OperatorSpec, ...]] = field(default_factory=dict)
    delivery_restores: List[DeliveryRestore] = field(default_factory=list)
    effects: PlanEffects = field(default_factory=PlanEffects)


class WideningPlanner:
    """Builds and commits widening actions against a deployment."""

    def __init__(self, planner: Planner) -> None:
        self.planner = planner

    # ------------------------------------------------------------------
    def plan_widening(
        self,
        deployment: Deployment,
        candidate: InstalledStream,
        needed: StreamProperties,
        query_name: str,
    ) -> Optional[Tuple[InstalledStream, WideningAction]]:
        """Try to widen ``candidate`` so that it serves ``needed``.

        Returns the *hypothetical* widened stream (not yet installed)
        plus the action describing the deployment change, or ``None``
        when widening does not apply.
        """
        if candidate.is_original:
            return None  # the raw stream is already maximal
        widened_content = widen_content(candidate.content, needed)
        if widened_content is None:
            return None
        parent = deployment.streams.get(candidate.parent_id or "")
        if parent is None:
            return None
        widened_pipeline = derive_compensation(parent.content, widened_content)

        action = WideningAction(
            stream_id=candidate.stream_id,
            widened_content=widened_content,
            widened_pipeline=widened_pipeline,
        )
        self._plan_consumers(deployment, candidate, widened_content, action, query_name)
        self._estimate_delta(deployment, candidate, parent, action)

        widened_stream = InstalledStream(
            stream_id=candidate.stream_id,
            content=widened_content,
            origin_node=candidate.origin_node,
            route=candidate.route,
            parent_id=candidate.parent_id,
            pipeline=widened_pipeline,
            query=candidate.query,
        )
        return widened_stream, action

    # ------------------------------------------------------------------
    def _plan_consumers(
        self,
        deployment: Deployment,
        candidate: InstalledStream,
        widened_content: StreamProperties,
        action: WideningAction,
        query_name: str,
    ) -> None:
        # Child streams: recompute their compensation pipelines against
        # the widened content.
        for stream in deployment.streams.values():
            if stream.parent_id != candidate.stream_id:
                continue
            action.consumer_pipelines[stream.stream_id] = derive_compensation(
                widened_content, stream.content
            )
        # Direct deliveries: subscriptions whose delivered stream IS the
        # candidate get a restoring stream at their super-peer.
        for record in deployment.queries.values():
            for input_stream, stream_id in record.delivered:
                if stream_id != candidate.stream_id:
                    continue
                restore = InstalledStream(
                    stream_id=f"{candidate.stream_id}#restore:{record.name}:{query_name}",
                    content=candidate.content,
                    origin_node=candidate.target_node,
                    route=(candidate.target_node,),
                    parent_id=candidate.stream_id,
                    pipeline=derive_compensation(widened_content, candidate.content),
                    query=record.name,
                )
                action.delivery_restores.append(
                    DeliveryRestore(
                        query=record.name,
                        input_stream=input_stream,
                        old_stream_id=stream_id,
                        restore=restore,
                    )
                )

    def _estimate_delta(
        self,
        deployment: Deployment,
        candidate: InstalledStream,
        parent: InstalledStream,
        action: WideningAction,
    ) -> None:
        """Delta effects: extra traffic on the widened route, pipeline
        load changes at the origin, restore pipelines at targets."""
        catalog = self.planner.catalog
        net = self.planner.net
        old_rate = estimate_stream_rate(candidate.content, catalog)
        new_rate = estimate_stream_rate(action.widened_content, catalog)
        delta_bits = new_rate.bits_per_second - old_rate.bits_per_second
        for a, b in candidate.links():
            action.effects.add_link(net.link(a, b), delta_bits)
        delta_frequency = new_rate.frequency - old_rate.frequency
        peer = net.super_peer(candidate.origin_node)
        for sender, _ in candidate.links():
            sender_peer = net.super_peer(sender)
            action.effects.add_peer(
                sender, base_load("transfer") * sender_peer.pindex * delta_frequency
            )
        # Pipeline load delta at the origin (approximate: both pipelines
        # see the parent stream's frequency at their selection stage).
        parent_rate = estimate_stream_rate(parent.content, catalog)
        def pipeline_work(pipeline):
            work = 0.0
            frequency = parent_rate.frequency
            for spec in pipeline:
                work += base_load(spec.kind) * peer.pindex * frequency
                if spec.kind == "selection" and isinstance(spec, SelectionSpec):
                    stats = catalog.for_stream(candidate.content.stream)
                    frequency = min(
                        frequency, stats.frequency * stats.selectivity(spec.graph)
                    )
            return work
        action.effects.add_peer(
            candidate.origin_node,
            pipeline_work(action.widened_pipeline) - pipeline_work(candidate.pipeline),
        )
        # Restoring pipelines at delivery targets.
        for restore in action.delivery_restores:
            target = net.super_peer(restore.restore.origin_node)
            for spec in restore.restore.pipeline:
                action.effects.add_peer(
                    restore.restore.origin_node,
                    base_load(spec.kind) * target.pindex * new_rate.frequency,
                )

    # ------------------------------------------------------------------
    def commit(self, deployment: Deployment, action: WideningAction) -> None:
        """Apply a widening action's *structural* changes.

        Effects are NOT committed here — the subscriber folds them into
        the evaluation plan's combined effects so that admission control
        and the usage ledger see widening and plan as one unit.
        """
        old = deployment.streams[action.stream_id]
        deployment.streams[action.stream_id] = InstalledStream(
            stream_id=old.stream_id,
            content=action.widened_content,
            origin_node=old.origin_node,
            route=old.route,
            parent_id=old.parent_id,
            pipeline=action.widened_pipeline,
            query=old.query,
        )
        for stream_id, pipeline in action.consumer_pipelines.items():
            child = deployment.streams[stream_id]
            deployment.streams[stream_id] = InstalledStream(
                stream_id=child.stream_id,
                content=child.content,
                origin_node=child.origin_node,
                route=child.route,
                parent_id=child.parent_id,
                pipeline=pipeline,
                query=child.query,
            )
        for restore in action.delivery_restores:
            deployment.install_stream(restore.restore)
            record = deployment.queries[restore.query]
            delivered = tuple(
                (input_stream, restore.restore.stream_id)
                if stream_id == restore.old_stream_id and input_stream == restore.input_stream
                else (input_stream, stream_id)
                for input_stream, stream_id in record.delivered
            )
            deployment.queries[restore.query] = RegisteredQuery(
                name=record.name,
                properties=record.properties,
                analyzed=record.analyzed,
                subscriber_node=record.subscriber_node,
                delivered=delivered,
            )
