"""Indexed candidate lookup for ``Subscribe`` — the control-plane index.

The paper evaluates Algorithm 1 with a handful of subscriptions, so the
faithful implementation scans *every* stream available at a visited node
and runs Algorithm 2 on it.  At production registration volumes (the
ROADMAP's "heavy traffic from millions of users") that scan is the
control-plane bottleneck: O(installed streams) candidate matches per
visited node, quadratic in total registrations.

This module narrows the scan with an inverted index over *content
signatures*:

* :func:`content_signature` reduces a stream's
  :class:`~repro.properties.StreamProperties` to its structural skeleton
  — original stream, item path, and per-operator *details* (operator
  kind plus the components Algorithm 2 requires to be equal, e.g. the
  aggregated path and window class for aggregations);
* every component of a signature is a **necessary condition** of
  :func:`~repro.matching.match_stream_properties`: a candidate whose
  signature is not covered by the subscription's compatible details can
  never match.  The index therefore prunes candidates without ever
  changing the set of matches — indexed and brute-force registration
  choose identical plans (covered by a property test);
* :class:`SubscriptionProbe` precomputes, once per subscription input,
  the set of signatures the subscription is compatible with
  (aggregation details expand along ``avg → sum/count`` servability);
* :class:`StreamAvailabilityIndex` maintains ``node → signature →
  stream ids`` buckets incrementally on install/release, so query
  registration, deregistration GC, and plan-repair teardown keep it
  consistent for free (invariant ``P14x`` in :mod:`repro.analysis`).

Lookups are adaptive: a probe with few distinct compatible signatures
enumerates them (hash lookups, independent of bucket count), while a
node with fewer buckets than the probe has signatures is scanned
directly with a subset test.  Either way the result is sorted by stream
id — the deterministic tie-breaking order shared with the brute-force
scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..matching.aggregation import serving_functions
from ..properties import (
    AggregationSpec,
    OperatorSpec,
    Properties,
    StreamProperties,
    UdfSpec,
    WindowContentsSpec,
)
from ..xmlkit import Path

#: One operator's structural skeleton inside a signature.
Detail = Tuple[object, ...]

#: Probes with more compatible details than this never enumerate the
#: (exponential) signature powerset; they scan node buckets instead.
_MAX_ENUMERATED_DETAILS = 10


@dataclass(frozen=True)
class ContentSignature:
    """The structural skeleton of a stream's content.

    Two contents with different signatures can still both match a
    subscription; but a candidate matches only if its signature's
    details are a subset of the subscription's compatible details
    (necessary condition of Algorithm 2).
    """

    stream: str
    item_path: Path
    details: FrozenSet[Detail]

    def __post_init__(self) -> None:
        # Precomputed: signatures are bucket keys, hashed on every
        # index maintenance step and probe lookup.
        object.__setattr__(
            self, "_hash", hash((self.stream, self.item_path, self.details))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]


def _operator_detail(op: OperatorSpec) -> Detail:
    """The components Algorithm 2 requires to coincide for ``op``.

    Only *necessary* equalities go in here — anything Algorithm 2 checks
    by implication/coverage (predicates, projections, window sizes)
    stays out, so the index never prunes a true match:

    * aggregation: the aggregated path must be equal and the window kind
      and reference element must coincide in every branch of
      ``MatchAggregations``; the function must be servable (handled on
      the probe side via :func:`serving_functions`);
    * window contents: ``shareable_from`` requires equal kind/reference;
    * udf: Algorithm 2's unknown-operator case requires the operator and
      its parameter vector to be equal;
    * selection/projection: only the operator kind is necessary.
    """
    if isinstance(op, AggregationSpec):
        return (
            "aggregation",
            op.function,
            op.aggregated_path,
            op.window.kind,
            op.window.reference,
        )
    if isinstance(op, WindowContentsSpec):
        return ("window", op.window.kind, op.window.reference)
    if isinstance(op, UdfSpec):
        return ("udf", op.name, op.parameters)
    return (op.kind,)


def content_signature(content: StreamProperties) -> ContentSignature:
    """Signature of an installed stream's content."""
    return ContentSignature(
        stream=content.stream,
        item_path=content.item_path,
        details=frozenset(_operator_detail(op) for op in content.operators),
    )


def _compatible_details(subscription: StreamProperties) -> FrozenSet[Detail]:
    """Every detail a matching candidate's operators may carry.

    A candidate operator with a detail outside this set has no same-kind
    counterpart in the subscription that could satisfy Algorithm 2's
    equality requirements, so the candidate cannot match.  Aggregation
    details fan out over :func:`serving_functions` — an ``avg`` stream
    may serve a ``sum`` subscription, so the ``sum`` probe also accepts
    ``avg`` signatures.
    """
    details: Set[Detail] = set()
    for op in subscription.operators:
        if isinstance(op, AggregationSpec):
            for function in serving_functions(op.function):
                details.add(
                    (
                        "aggregation",
                        function,
                        op.aggregated_path,
                        op.window.kind,
                        op.window.reference,
                    )
                )
        else:
            details.add(_operator_detail(op))
    return frozenset(details)


@dataclass(frozen=True)
class SubscriptionProbe:
    """One subscription input, prepared for indexed lookup.

    ``signatures`` enumerates every signature whose details are a subset
    of the subscription's compatible details (the raw stream — empty
    details — is always included: Algorithm 2 trivially matches it).
    ``None`` when the powerset would be too large; lookups then scan the
    node's buckets with a subset test instead.
    """

    stream: str
    item_path: Path
    details: FrozenSet[Detail]
    signatures: Optional[Tuple[ContentSignature, ...]]

    @classmethod
    def from_subscription(cls, subscription: StreamProperties) -> "SubscriptionProbe":
        details = _compatible_details(subscription)
        signatures: Optional[Tuple[ContentSignature, ...]] = None
        if len(details) <= _MAX_ENUMERATED_DETAILS:
            # key=repr: details mix strings, paths, and None, which do
            # not order against each other; repr gives a total order.
            ordered = sorted(details, key=repr)
            signatures = tuple(
                ContentSignature(
                    subscription.stream,
                    subscription.item_path,
                    frozenset(subset),
                )
                for size in range(len(ordered) + 1)
                for subset in combinations(ordered, size)
            )
        return cls(
            stream=subscription.stream,
            item_path=subscription.item_path,
            details=details,
            signatures=signatures,
        )

    def covers(self, signature: ContentSignature) -> bool:
        """Structural compatibility: could a stream with ``signature``
        match this subscription input?"""
        return (
            signature.stream == self.stream
            and signature.item_path == self.item_path
            and signature.details <= self.details
        )


class StreamAvailabilityIndex:
    """Inverted index ``node → content signature → stream ids``.

    Mirrors :class:`~repro.sharing.plan.Deployment`'s availability
    bookkeeping (a stream is available at every node of its route), but
    bucketed by signature so ``Subscribe`` consults only structurally
    compatible candidates.  Maintenance is strictly add/discard from
    ``install_stream``/``release_stream`` — there is no rebuild path, so
    the ``P14x`` invariants check it against the ground truth.
    """

    __slots__ = ("_buckets", "_signatures")

    def __init__(self) -> None:
        self._buckets: Dict[str, Dict[ContentSignature, Set[str]]] = {}
        self._signatures: Dict[str, ContentSignature] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(
        self, stream_id: str, content: StreamProperties, route: Sequence[str]
    ) -> None:
        signature = content_signature(content)
        self._signatures[stream_id] = signature
        for node in dict.fromkeys(route):
            self._buckets.setdefault(node, {}).setdefault(signature, set()).add(
                stream_id
            )

    def discard(self, stream_id: str, route: Sequence[str]) -> None:
        """Remove one stream; idempotent, like ``release_stream``."""
        signature = self._signatures.pop(stream_id, None)
        if signature is None:
            return
        for node in dict.fromkeys(route):
            per_node = self._buckets.get(node)
            if per_node is None:
                continue
            bucket = per_node.get(signature)
            if bucket is None:
                continue
            bucket.discard(stream_id)
            if not bucket:
                del per_node[signature]
                if not per_node:
                    del self._buckets[node]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def candidate_ids(self, node: str, probe: SubscriptionProbe) -> List[str]:
        """Structurally compatible stream ids at ``node``, sorted.

        A superset of the streams Algorithm 2 accepts there — every
        pruned stream is a guaranteed non-match.
        """
        per_node = self._buckets.get(node)
        if not per_node:
            return []
        ids: List[str] = []
        signatures = probe.signatures
        if signatures is not None and len(signatures) < len(per_node):
            for signature in signatures:
                bucket = per_node.get(signature)
                if bucket:
                    ids.extend(bucket)
        else:
            for signature, bucket in per_node.items():
                if probe.covers(signature):
                    ids.extend(bucket)
        ids.sort()
        return ids

    # ------------------------------------------------------------------
    # Introspection (verifier, tests)
    # ------------------------------------------------------------------
    def signature_of(self, stream_id: str) -> Optional[ContentSignature]:
        return self._signatures.get(stream_id)

    def entries(self) -> Iterator[Tuple[str, str, ContentSignature]]:
        """Yield every ``(node, stream_id, signature)`` bucket entry."""
        for node, per_node in self._buckets.items():
            for signature, bucket in per_node.items():
                for stream_id in bucket:
                    yield node, stream_id, signature

    def __len__(self) -> int:
        return len(self._signatures)


def admission_order_key(properties: Properties) -> Tuple[object, ...]:
    """Sort key for batch admission: most general subscriptions first.

    Within a batch, a subscription whose delivered stream is a superset
    of another's content should register first so the narrower one can
    tap it.  Generality is approximated structurally — item-level before
    aggregates (aggregate results can never serve item-level inputs),
    fewer operators, fewer selection atoms (looser predicates), wider
    projections — with the query name as the final total-order tiebreak.
    """
    inputs = properties.inputs
    streams = tuple(sorted(sp.stream for sp in inputs))
    has_aggregate = any(sp.aggregation is not None for sp in inputs)
    operator_count = sum(len(sp.operators) for sp in inputs)
    selection_atoms = sum(
        len(sp.selection.graph) for sp in inputs if sp.selection is not None
    )
    projection_width = sum(
        len(sp.projection.output_elements)
        for sp in inputs
        if sp.projection is not None
    )
    return (
        streams,
        int(has_aggregate),
        operator_count,
        selection_atoms,
        -projection_width,
        properties.name,
    )
