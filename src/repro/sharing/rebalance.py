"""Adaptive re-optimization: live plan migration under load drift.

Plans are placed once at registration and only change on faults, so
sustained load drift — a source whose rate quadruples, a hot spot
wandering into another query's region — leaves the originally cheapest
super-peer saturated while the rest of the network idles.
:class:`Rebalancer` closes the loop between the observability plane
and the control plane (DESIGN.md §13):

1. the executor feeds it the per-epoch :class:`~repro.obs.EpochSnapshot`
   series; a :class:`~repro.obs.DriftDetector` turns those into
   sustained-overload alerts (windowed means + hysteresis, so photon
   bursts and fault transients don't trigger churn);
2. on an alert, :meth:`migrate` re-plans every subscription whose
   delivery chain places operator work on a hot super-peer, reusing
   the PR 3 repair machinery as the migration primitive: tear the
   affected subscriptions down (garbage-collecting their now-unshared
   streams and releasing the estimated commitments), then re-register
   each one through the ordinary strategy — *with the planner's cost
   model temporarily wrapped to surcharge work placed on hot peers*,
   so Algorithm 1's strict-``<`` comparison steers new operator
   placements away from the hotspot;
3. the rewritten deployment passes the PR 1 verified pre-flight
   (``verify=True`` systems), exactly like churn repair does.

The cost-model swap only biases the *choice* among candidate plans:
committed :class:`~repro.costmodel.PlanEffects` stay the unbiased
estimates, so the usage ledger the P13x invariants check is untouched.

Migration is a control-plane rewrite at a quiescent epoch boundary —
make-before-break: the executor reconciles the running pipelines
against the rewritten deployment with an *open* delivery gate, so a
fault-free migration loses and duplicates nothing (pinned by the
conservation tests).  Windowed operators restart their windows across
a move, same as repair (DESIGN.md §8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..costmodel import CostModel, NetworkUsage, PlanEffects, estimate_stream_rate
from ..obs.drift import DriftAlert, DriftConfig, DriftDetector
from ..obs.timeseries import EpochSnapshot
from .deregister import Deregistrar
from .plan import RegisteredQuery
from .planner import PlanningError
from .subscribe import RegistrationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .system import StreamGlobe

__all__ = ["HotPeerCostModel", "MigrationReport", "Rebalancer"]

#: Default surcharge per unit of *relative* load (work/capacity) a
#: candidate plan places on a hot peer.  Large against the cost
#: function's O(1) relative terms, so any feasible placement avoiding
#: the hot peer wins; finite, so a plan *through* the hot peer still
#: beats no plan when the topology offers nothing else.
HOT_PEER_PENALTY = 1000.0


class HotPeerCostModel:
    """A :class:`~repro.costmodel.CostModel` wrapper that surcharges
    operator work placed on the given hot peers.

    Only :meth:`plan_cost` is biased — the admission-control
    :meth:`overloads` test and everything else delegate to the base
    model, and the effects committed to the usage ledger are produced
    upstream of costing, so the bias can never leak into accounting.
    """

    def __init__(
        self,
        base: CostModel,
        hot_peers: Sequence[str],
        penalty: float = HOT_PEER_PENALTY,
    ) -> None:
        self._base = base
        self._hot = frozenset(hot_peers)
        self._penalty = penalty

    def plan_cost(self, effects: PlanEffects, usage: NetworkUsage) -> float:
        cost = self._base.plan_cost(effects, usage)
        for peer, work in effects.peer_work.items():
            if peer in self._hot:
                capacity = self._base._net.super_peer(peer).capacity
                cost += self._penalty * (work / capacity)
        return cost

    def overloads(self, effects: PlanEffects, usage: NetworkUsage) -> bool:
        return self._base.overloads(effects, usage)

    def __getattr__(self, name: str):
        return getattr(self._base, name)


@dataclass
class MigrationReport:
    """What one migration pass moved, and what it bought.

    ``peer_work_before``/``peer_work_after`` record the usage ledger's
    committed work on every hot peer around the rewrite — the
    control-plane cost delta the benchmark reports (the measured
    per-epoch CPU% delta shows up in the run's time series).
    """

    context: str
    epoch_index: int
    hot_peers: Tuple[str, ...]
    moved_queries: List[str] = field(default_factory=list)
    removed_streams: List[str] = field(default_factory=list)
    reregistered: List[RegistrationResult] = field(default_factory=list)
    peer_work_before: Dict[str, float] = field(default_factory=dict)
    peer_work_after: Dict[str, float] = field(default_factory=dict)

    @property
    def migrated_queries(self) -> List[str]:
        return [r.query for r in self.reregistered if r.accepted]

    def hot_work_released(self) -> float:
        """Total committed work the rewrite took off the hot peers."""
        return sum(
            self.peer_work_before.get(peer, 0.0)
            - self.peer_work_after.get(peer, 0.0)
            for peer in self.hot_peers
        )

    def summary(self) -> str:
        return (
            f"{self.context}: {len(self.moved_queries)} quer(ies) moved off "
            f"{', '.join(self.hot_peers)}, "
            f"{len(self.removed_streams)} stream(s) rebuilt, "
            f"{self.hot_work_released():.1f} work/s released"
        )


class Rebalancer:
    """Consumes the epoch stream, migrates plans off sustained hotspots.

    One instance is handed to :meth:`StreamGlobe.run
    <repro.sharing.system.StreamGlobe.run>`; the executor calls
    :meth:`observe_epoch` at every sampled epoch boundary (a quiescent
    barrier on both executors) and applies the returned migration via
    the same reconcile machinery churn repair uses.
    """

    def __init__(
        self,
        system: "StreamGlobe",
        config: Optional[DriftConfig] = None,
        penalty: float = HOT_PEER_PENALTY,
        max_migrations: Optional[int] = None,
    ) -> None:
        self.system = system
        self.detector = DriftDetector(config or DriftConfig())
        self.penalty = penalty
        #: Optional hard cap on migration passes per run (None = unlimited).
        self.max_migrations = max_migrations
        #: Every migration applied so far, in epoch order.
        self.reports: List[MigrationReport] = []

    # ------------------------------------------------------------------
    def observe_epoch(self, snapshot: EpochSnapshot) -> Optional[MigrationReport]:
        """Feed one *global* epoch snapshot; migrate on sustained drift.

        Returns the applied :class:`MigrationReport`, or ``None`` when
        the epoch raised no alert or nothing movable lives on the hot
        peers.  The caller (the executor) owns making the boundary
        quiescent and reconciling the data plane afterwards.
        """
        alerts = self.detector.observe(snapshot)
        if not alerts:
            return None
        if self.max_migrations is not None and len(self.reports) >= self.max_migrations:
            return None
        alert = alerts[0]
        report = self.migrate(alert)
        if report is None or not report.moved_queries:
            return None
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    def migrate(self, alert: DriftAlert) -> Optional[MigrationReport]:
        """One migration pass: re-plan everything working on hot peers.

        Mirrors :meth:`PlanRepairer.repair
        <repro.sharing.repair.PlanRepairer.repair>`'s teardown /
        re-register structure — the topology is intact here, so unlike
        repair there is no damage closure and no pending parking: every
        torn-down subscription re-registers (with the hot-peer
        surcharge; retried unbiased if the surcharged search fails,
        which cannot lose plans the original registration found).
        """
        system = self.system
        deployment = system.deployment
        recorder = system.recorder
        hot = tuple(alert.peer_names)
        context = f"load drift at epoch {alert.epoch_index}"

        affected = self._affected_queries(hot)
        if not affected:
            return None

        report = MigrationReport(
            context=context, epoch_index=alert.epoch_index, hot_peers=hot
        )
        report.peer_work_before = {
            peer: deployment.usage.peer_work(peer) for peer in hot
        }
        deregistrar = Deregistrar(system.planner)

        with recorder.span(
            "rebalance", context=context, hot_peers=list(hot)
        ) as rebalance_span:
            with recorder.span("rebalance.teardown") as span:
                # Pop the affected subscriptions, release their
                # post-processing load, and sweep: streams no surviving
                # subscription shares are garbage-collected and their
                # estimated commitments released — the identical
                # teardown the repair path runs, against an undamaged
                # topology.
                popped: Dict[str, RegisteredQuery] = {
                    name: deployment.queries.pop(name) for name in affected
                }
                report.moved_queries = sorted(popped)
                release = PlanEffects()
                for record in popped.values():
                    for _, stream_id in record.delivered:
                        stream = deployment.streams.get(stream_id)
                        if stream is None:
                            continue
                        rate = estimate_stream_rate(stream.content, system.catalog)
                        deregistrar._charge(
                            release,
                            record.subscriber_node,
                            "restructure",
                            rate.frequency,
                        )
                report.removed_streams = deregistrar._collect_garbage(
                    deployment, release
                )
                deregistrar._apply_release(deployment, release)
                if recorder.enabled:
                    span.set(
                        moved_queries=len(popped),
                        removed_streams=len(report.removed_streams),
                    )

            with recorder.span("rebalance.reregister") as span:
                base_model = system.planner.cost_model
                system.planner.cost_model = HotPeerCostModel(
                    base_model, hot, self.penalty
                )
                try:
                    for name, record in sorted(popped.items()):
                        report.reregistered.append(
                            self._reregister(record)
                        )
                finally:
                    system.planner.cost_model = base_model
                if recorder.enabled:
                    span.set(reregistered=len(report.migrated_queries))

            report.peer_work_after = {
                peer: deployment.usage.peer_work(peer) for peer in hot
            }
            if recorder.enabled:
                rebalance_span.set(summary=report.summary())

        if recorder.enabled:
            recorder.event(
                "migration.report",
                context=context,
                epoch_index=alert.epoch_index,
                hot_peers=list(hot),
                moved_queries=len(report.moved_queries),
                removed_streams=len(report.removed_streams),
                queries_migrated=len(report.migrated_queries),
                hot_work_released=report.hot_work_released(),
            )

        system._preflight(f"after rebalance migration ({context})")
        return report

    # ------------------------------------------------------------------
    def _affected_queries(self, hot_peers: Tuple[str, ...]) -> List[str]:
        """Queries whose delivery chain runs operator work on a hot peer.

        Operator work is billed at a derived stream's origin (tap)
        node, so a subscription is movable when any *derived* stream in
        its delivered chains' parent closure originates on a hot peer.
        Original streams are pinned to their source's home — they never
        make a query movable by themselves.
        """
        deployment = self.system.deployment
        hot = set(hot_peers)
        affected: List[str] = []
        for name in sorted(deployment.queries):
            record = deployment.queries[name]
            chain: List[str] = [sid for _, sid in record.delivered]
            seen = set(chain)
            movable = False
            while chain:
                stream = deployment.streams.get(chain.pop())
                if stream is None:
                    continue
                if stream.parent_id is not None and stream.origin_node in hot:
                    movable = True
                    break
                if stream.parent_id is not None and stream.parent_id not in seen:
                    seen.add(stream.parent_id)
                    chain.append(stream.parent_id)
            # Restructuring/delivery work bills at the subscriber node.
            if movable or record.subscriber_node in hot:
                affected.append(name)
        return affected

    def _reregister(self, record: RegisteredQuery) -> RegistrationResult:
        """Re-register one torn-down subscription, never losing it.

        The surcharged search can only fail where the unbiased search
        would (the penalty is finite), but re-plan defensively: on a
        surcharged :class:`PlanningError`, retry with the base model —
        the topology is intact, so the original plan shape is always
        still available.
        """
        system = self.system
        try:
            result = system.registrar.register(
                system.deployment,
                record.properties,
                record.analyzed,
                record.subscriber_node,
            )
            if result.accepted:
                return result
        except PlanningError:
            pass
        base_model = system.planner.cost_model
        if isinstance(base_model, HotPeerCostModel):
            system.planner.cost_model = base_model._base
        try:
            result = system.registrar.register(
                system.deployment,
                record.properties,
                record.analyzed,
                record.subscriber_node,
            )
        finally:
            system.planner.cost_model = base_model
        if not result.accepted:
            raise PlanningError(
                f"migration could not re-register query {record.name!r}: "
                f"{result.rejection_reason or 'registration rejected'}"
            )
        return result
