"""Plan generation: compensation pipelines, effect estimation, costing.

``generatePlan`` in Algorithm 1 turns "reuse stream *p* at node *v* for
the query registered at *v_q*" into a concrete evaluation plan.  This
module implements it in three parts:

* :func:`derive_compensation` — the operator specs that transform the
  reused stream's content into the subscription's required content;
* :class:`Planner.plans_for_candidate` — concrete plan variants.  The
  compensation can run at the tap node (in-network processing — the
  paper's stream-sharing placement, cf. Query 1 computed at SP4) or at
  the subscriber's super-peer (the shape of Algorithm 1's *initial*
  plan, which ships the stream first).  Both variants are generated and
  the cost function chooses — a documented, cost-neutral generalization;
* effect estimation — the added traffic per link and operator load per
  peer, from the cost model's ``size(p)``/``freq(p)`` estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..costmodel import (
    CostModel,
    LatencyModel,
    PlanEffects,
    StatisticsCatalog,
    StreamRate,
    base_load,
    estimate_stream_rate,
)
from ..network.routing import RouteCache
from ..network.topology import Network
from ..obs.recorder import NULL_RECORDER
from ..properties import (
    AggregationSpec,
    OperatorSpec,
    ProjectionSpec,
    ReAggregationSpec,
    SelectionSpec,
    StreamProperties,
    WindowContentsSpec,
)
from .plan import Deployment, InputPlan, InstalledStream


class PlanningError(Exception):
    """Raised when no valid plan can be constructed."""


def derive_compensation(
    reused: StreamProperties, subscription: StreamProperties
) -> Tuple[OperatorSpec, ...]:
    """Operators that turn ``reused`` content into ``subscription`` content.

    Assumes the two already matched via Algorithm 2 (the reused stream
    is a superset of what the subscription needs).  Returns an empty
    tuple for exact reuse.
    """
    reused_agg = reused.aggregation
    sub_agg = subscription.aggregation

    if reused_agg is not None:
        if sub_agg is None:
            raise PlanningError(
                "an aggregate stream cannot serve an item-level subscription"
            )
        if reused_agg == sub_agg:
            return ()
        return (ReAggregationSpec(reused_agg, sub_agg),)

    ops: List[OperatorSpec] = []
    sub_selection = subscription.selection
    if sub_selection is not None and sub_selection != reused.selection:
        ops.append(SelectionSpec(sub_selection.graph))

    if sub_agg is not None:
        ops.append(sub_agg)
        return tuple(ops)

    sub_projection = subscription.projection
    reused_projection = reused.projection
    if sub_projection is not None and (
        reused_projection is None
        or reused_projection.output_elements != sub_projection.output_elements
    ):
        ops.append(
            ProjectionSpec(
                output_elements=sub_projection.output_elements,
                referenced_elements=sub_projection.referenced_elements,
            )
        )

    sub_window = subscription.operator_of_kind("window")
    reused_window = reused.operator_of_kind("window")
    if isinstance(sub_window, WindowContentsSpec) and reused_window is None:
        ops.append(sub_window)
    return tuple(ops)


class Planner:
    """Builds and costs candidate plans against a deployment state."""

    def __init__(
        self,
        net: Network,
        catalog: StatisticsCatalog,
        cost_model: CostModel,
        latency_model: Optional[LatencyModel] = None,
        recorder: Optional[object] = None,
    ) -> None:
        self.net = net
        self.catalog = catalog
        self.cost_model = cost_model
        self.latency_model = latency_model or LatencyModel()
        #: Observability sink (no-op unless the owning system traces).
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        # Always-on plain-int cache telemetry (cheap enough to keep
        # unconditional; surfaced via StreamGlobe.cache_stats()).
        self.rate_cache_hits = 0
        self.rate_cache_misses = 0
        self.plans_costed = 0
        #: Shortest-path memo; invalidated by the topology's churn
        #: version counter, so repairs re-route automatically.
        self.routes = RouteCache(net)
        # size(p)/freq(p) memo: a stream's rate depends only on its
        # immutable content and the catalog entry of its original
        # stream, which is registered once and never mutated.
        self._rate_cache: Dict[StreamProperties, StreamRate] = {}
        # Content intern table: equal contents recur constantly in
        # template-style workloads, and every dict probe on a *distinct*
        # equal object pays a full structural __eq__.  Interning makes
        # recurring contents pointer-identical so those probes hit the
        # dict's identity fast-path.
        self._contents: Dict[StreamProperties, StreamProperties] = {}

    def intern_content(self, content: StreamProperties) -> StreamProperties:
        """Canonical instance for ``content`` (equality-preserving)."""
        return self._contents.setdefault(content, content)

    def stream_rate(self, content: StreamProperties) -> StreamRate:
        """Memoized :func:`~repro.costmodel.estimate_stream_rate`."""
        rate = self._rate_cache.get(content)
        if rate is None:
            self.rate_cache_misses += 1
            rate = estimate_stream_rate(content, self.catalog)
            self._rate_cache[content] = rate
        else:
            self.rate_cache_hits += 1
        return rate

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def plans_for_candidate(
        self,
        deployment: Deployment,
        candidate: InstalledStream,
        tap_node: str,
        subscription: StreamProperties,
        query_name: str,
        subscriber_node: str,
        placements: Tuple[str, ...] = ("tap", "target"),
    ) -> List[InputPlan]:
        """All placement variants of reusing ``candidate`` at ``tap_node``."""
        pipeline = derive_compensation(candidate.content, subscription)
        plans: List[InputPlan] = []
        seen_shapes = set()
        for placement in placements:
            node = tap_node if placement == "tap" else subscriber_node
            shape = (node,)
            if shape in seen_shapes:
                continue  # tap == target: the variants coincide
            seen_shapes.add(shape)
            plans.append(
                self._build_plan(
                    deployment,
                    candidate,
                    tap_node,
                    node,
                    pipeline,
                    subscription,
                    query_name,
                    subscriber_node,
                )
            )
        return plans

    def _build_plan(
        self,
        deployment: Deployment,
        candidate: InstalledStream,
        tap_node: str,
        placement_node: str,
        pipeline: Tuple[OperatorSpec, ...],
        subscription: StreamProperties,
        query_name: str,
        subscriber_node: str,
    ) -> InputPlan:
        relay: Optional[InstalledStream] = None
        delivered_parent = candidate.stream_id
        if placement_node != tap_node:
            relay_route = self.routes.path(tap_node, placement_node)
            relay = InstalledStream(
                stream_id=f"{query_name}:{subscription.stream}:relay",
                content=candidate.content,
                origin_node=tap_node,
                route=relay_route,
                parent_id=candidate.stream_id,
                pipeline=(),
                query=query_name,
            )
            delivered_parent = relay.stream_id

        delivered_route = self.routes.path(placement_node, subscriber_node)
        delivered = InstalledStream(
            stream_id=f"{query_name}:{subscription.stream}",
            content=subscription,
            origin_node=placement_node,
            route=delivered_route,
            parent_id=delivered_parent,
            pipeline=pipeline,
            query=query_name,
        )

        effects = self._estimate_effects(
            candidate, tap_node, placement_node, relay, delivered, subscription
        )
        cost = self.cost_model.plan_cost(effects, deployment.usage)
        self.plans_costed += 1
        return InputPlan(
            input_stream=subscription.stream,
            reused_id=candidate.stream_id,
            tap_node=tap_node,
            placement_node=placement_node,
            relay=relay,
            delivered=delivered,
            effects=effects,
            cost=cost,
        )

    # ------------------------------------------------------------------
    # Effect estimation
    # ------------------------------------------------------------------
    def _estimate_effects(
        self,
        candidate: InstalledStream,
        tap_node: str,
        placement_node: str,
        relay: Optional[InstalledStream],
        delivered: InstalledStream,
        subscription: StreamProperties,
    ) -> PlanEffects:
        effects = PlanEffects()
        reused_rate = self.stream_rate(candidate.content)
        delivered_rate = self.stream_rate(subscription)

        # Duplicating the reused stream at the tap node.
        self._charge(effects, tap_node, "duplicate", reused_rate.frequency)

        # Relay stream: reused content shipped to the placement node.
        if relay is not None:
            self._route_effects(effects, relay.route, reused_rate)

        # Compensation pipeline at the placement node.
        frequency = reused_rate.frequency
        for spec in delivered.pipeline:
            udf_name = getattr(spec, "name", None) if spec.kind == "udf" else None
            self._charge(effects, placement_node, spec.kind, frequency, udf_name)
            frequency = self._stage_output_frequency(
                spec, subscription, frequency, delivered_rate.frequency
            )

        # Delivered stream: subscription content to the subscriber.
        self._route_effects(effects, delivered.route, delivered_rate)

        # Post-processing at the subscriber's super-peer.
        self._charge(effects, delivered.target_node, "restructure", delivered_rate.frequency)
        return effects

    def _stage_output_frequency(
        self,
        spec: OperatorSpec,
        subscription: StreamProperties,
        input_frequency: float,
        delivered_frequency: float,
    ) -> float:
        if isinstance(spec, SelectionSpec):
            stats = self.catalog.for_stream(subscription.stream)
            return min(input_frequency, stats.frequency * stats.selectivity(spec.graph))
        if isinstance(spec, (AggregationSpec, ReAggregationSpec, WindowContentsSpec)):
            return delivered_frequency
        return input_frequency  # projections keep the frequency

    def _route_effects(self, effects: PlanEffects, route, rate) -> None:
        if len(route) < 2:
            return
        for a, b in zip(route, route[1:]):
            effects.add_link(self.net.link(a, b), rate.bits_per_second)
        for sender in route[:-1]:
            self._charge(effects, sender, "transfer", rate.frequency)

    def _charge(
        self,
        effects: PlanEffects,
        node: str,
        kind: str,
        frequency: float,
        udf_name=None,
    ) -> None:
        peer = self.net.super_peer(node)
        effects.add_peer(node, base_load(kind, udf_name) * peer.pindex * frequency)
