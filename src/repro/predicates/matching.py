"""Predicate matching — Algorithm 3 of the paper (``MatchPredicates``).

Given the predicate graph ``G`` of a data stream considered for sharing
and the graph ``G'`` of a newly registered subscription, decide whether
the predicates of ``G'`` *imply* those of ``G`` — i.e. every item the
new subscription wants survives the filter that produced the candidate
stream, so the stream is a superset of what the subscription needs.

Two modes are provided:

``edgewise`` (the paper's Algorithm 3)
    For each node ``v ∈ V`` there must be an equivalent ``v' ∈ V'``, and
    for each edge ``x`` connected to ``v`` an edge ``y`` connected to
    ``v'`` with ``ζ(x) ⇐ ζ(y)``.  Sound, and complete on minimized
    graphs for the paper's workloads, but it can miss implications that
    are only *derivable* in ``G'`` (e.g. ``a ≤ b ∧ b ≤ 5`` implies
    ``a ≤ 7`` without any direct ``a → 0`` edge).

``closure`` (documented strengthening, see DESIGN.md)
    Compare each edge of ``G`` against the all-pairs tightest bounds of
    ``G'``.  Sound *and* complete for conjunctions of the fragment's
    atoms.  The ablation bench E8 quantifies the difference.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .atoms import Bound, NodeLabel, NormalizedAtom
from .graph import PredicateGraph


def match_predicates(
    stream_graph: PredicateGraph,
    subscription_graph: PredicateGraph,
    mode: str = "edgewise",
) -> bool:
    """``True`` iff the subscription's predicates imply the stream's.

    Parameters
    ----------
    stream_graph:
        ``G`` — predicates of the existing data stream.
    subscription_graph:
        ``G'`` — predicates of the subscription to be registered.
    mode:
        ``"edgewise"`` (Algorithm 3) or ``"closure"`` (complete variant).
    """
    if mode == "edgewise":
        return _match_edgewise(stream_graph, subscription_graph)
    if mode == "closure":
        return _match_closure(stream_graph, subscription_graph)
    raise ValueError(f"unknown predicate matching mode {mode!r}")


def _match_edgewise(g: PredicateGraph, g_new: PredicateGraph) -> bool:
    """Line-by-line transcription of Algorithm 3.

    Node equivalence ``v ≙ v'`` (line 4) holds when both labels refer to
    the same absolute element path (or both are the zero node) — labels
    are value objects here, so equivalence is equality.
    """
    new_nodes = set(g_new.nodes)
    for v in g.nodes:                                   # line 1
        if v not in new_nodes:                          # lines 2–4, 20–22
            if not g.edges_at(v):
                continue  # isolated node: carries no constraint
            return False
        for x in g.edges_at(v):                         # line 6
            if not _edge_matched(x, v, g_new):          # lines 7–15
                return False
    return True                                         # line 24


def _edge_matched(x: NormalizedAtom, v: NodeLabel, g_new: PredicateGraph) -> bool:
    """Lines 7–12: find ``y`` at the equivalent node with ζ(x) ⇐ ζ(y).

    ζ(x) ⇐ ζ(y) requires the same orientation between the equivalent
    endpoints and ``weight(y)`` at least as tight as ``weight(x)``.
    """
    for y in g_new.edges_at(v):
        if y.source == x.source and y.target == x.target and y.bound.implies(x.bound):
            return True
    return False


def _match_closure(g: PredicateGraph, g_new: PredicateGraph) -> bool:
    """Compare every stream atom against the derived bounds of G'."""
    if g.is_empty():
        return True
    closure: Dict[Tuple[NodeLabel, NodeLabel], Bound] = g_new.closure()
    for (source, target), bound in g.edges.items():
        derived = closure.get((source, target))
        if derived is None or not derived.implies(bound):
            return False
    return True
