"""Batch evaluation of compiled conjunctive predicate edges.

The selection operator compiles its predicate graph once into edge
tuples ``(source_steps, target_steps, bound, strict)`` where ``None``
steps encode the zero node (see :mod:`repro.engine.select`).  The tree
path evaluates them per item; :func:`filter_rows` evaluates one edge at
a time across a whole column batch, refining the surviving row vector —
the fused-comparison form of the same conjunction.

Semantics are pinned to ``SelectOperator._accepts``: an operand whose
path does not resolve (or is not numeric) makes the item fail the whole
conjunction, the zero node contributes ``0.0``, and each edge tests
``left ≤ right + bound`` (strict: ``<``) with the identical operand
order and float arithmetic, so tree and columnar evaluation accept
byte-identical row sets.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

#: A compiled edge (re-exported shape; owned by repro.engine.select).
CompiledEdge = Tuple[Optional[Tuple[str, ...]], Optional[Tuple[str, ...]], float, bool]

#: ``column_for(steps)`` returns the numeric column for a path, indexed
#: by base row id, or ``None`` when every row evaluates to ``None``
#: (path missing from the shape / interior node).
ColumnLookup = Callable[[Tuple[str, ...]], Optional[Sequence[Optional[float]]]]


def filter_rows(
    edges: Sequence[CompiledEdge],
    rows: Sequence[int],
    column_for: ColumnLookup,
) -> Sequence[int]:
    """Refine ``rows`` to those satisfying every compiled edge.

    Evaluates edge-by-edge over the surviving rows (cheapest-first
    short-circuit: an empty survivor set stops immediately), exactly
    mirroring the per-item conjunction of ``SelectOperator._accepts``.
    """
    for source_steps, target_steps, bound, strict in edges:
        if not rows:
            break
        if source_steps is None and target_steps is None:
            # 0 ≤ 0 + bound: a row-independent tautology or contradiction.
            if not (0.0 < bound if strict else 0.0 <= bound):
                return []
            continue
        if source_steps is None:
            right_col = column_for(target_steps)
            if right_col is None:
                return []  # right operand is None on every row
            if strict:
                rows = [
                    i for i in rows
                    if (r := right_col[i]) is not None and 0.0 < r + bound
                ]
            else:
                rows = [
                    i for i in rows
                    if (r := right_col[i]) is not None and 0.0 <= r + bound
                ]
            continue
        if target_steps is None:
            left_col = column_for(source_steps)
            if left_col is None:
                return []
            # right + bound with right = 0.0; 0.0 + bound compares
            # identically to bound for every float (incl. -0.0/nan).
            if strict:
                rows = [
                    i for i in rows
                    if (left := left_col[i]) is not None and left < bound
                ]
            else:
                rows = [
                    i for i in rows
                    if (left := left_col[i]) is not None and left <= bound
                ]
            continue
        left_col = column_for(source_steps)
        right_col = column_for(target_steps)
        if left_col is None or right_col is None:
            return []
        if strict:
            rows = [
                i for i in rows
                if (left := left_col[i]) is not None
                and (r := right_col[i]) is not None
                and left < r + bound
            ]
        else:
            rows = [
                i for i in rows
                if (left := left_col[i]) is not None
                and (r := right_col[i]) is not None
                and left <= r + bound
            ]
    return rows


def rows_as_list(rows: Sequence[int]) -> List[int]:
    """Materialize a row vector (``range`` views included) as a list."""
    return rows if isinstance(rows, list) else list(rows)
