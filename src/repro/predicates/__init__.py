"""Predicate normalization, graphs, and implication matching (Section 3.3).

>>> from fractions import Fraction
>>> from repro.xmlkit import Path
>>> from repro.predicates import normalize_comparison, PredicateGraph, match_predicates
>>> ra = Path("photons/photon/coord/cel/ra")
>>> g  = PredicateGraph(normalize_comparison(ra, "<=", None, Fraction(138)))
>>> g2 = PredicateGraph(normalize_comparison(ra, "<=", None, Fraction("135.5")))
>>> match_predicates(g, g2)   # 'ra <= 135.5' implies 'ra <= 138'
True
"""

from .atoms import (
    ZERO,
    ZERO_BOUND,
    Bound,
    NodeLabel,
    NormalizationError,
    NormalizedAtom,
    interval_of,
    normalize_atom,
    normalize_comparison,
)
from .graph import PredicateGraph, UnsatisfiableError, graph_from_atoms
from .matching import match_predicates

__all__ = [
    "ZERO",
    "ZERO_BOUND",
    "Bound",
    "NodeLabel",
    "NormalizationError",
    "NormalizedAtom",
    "PredicateGraph",
    "UnsatisfiableError",
    "graph_from_atoms",
    "interval_of",
    "match_predicates",
    "normalize_atom",
    "normalize_comparison",
]
