"""Normalized atomic predicates and strictness-aware bounds.

Section 3.3 normalizes predicates "to contain only comparisons of the
form ``$v ≥ c``, ``$v ≤ c`` and ``$v ≤ $w + c``".  The fragment's
operator set θ also contains the strict comparisons ``<`` and ``>``
(Section 2), which over decimal-valued domains cannot be rewritten into
non-strict ones.  Following the classic Rosenkrantz–Hunt treatment [5],
an edge weight is therefore a :class:`Bound` — an exact rational value
plus a strictness flag — with

* *addition* (path concatenation): values add, strictness ORs;
* *tightness order*: ``v ≤ 3`` is tighter than ``v ≤ 5``; ``v < 3`` is
  tighter than ``v ≤ 3``;
* *implication*: bound ``b₁`` implies bound ``b₂`` on the same edge iff
  ``b₁ ≤ b₂`` in tightness order.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple, Union

from ..wxquery.ast import Comparison, fraction_to_literal
from ..xmlkit import Path


class Bound:
    """A weight ``c`` with a strictness flag.

    The constraint carried by an edge ``u → v`` with bound ``(c, s)`` is
    ``u ≤ v + c`` when ``s`` is false and ``u < v + c`` when true.

    Internally strictness is an *epsilon count* (the classic
    ``c − k·ε`` encoding): path concatenation adds the counts, so a
    zero-weight cycle containing a strict edge keeps producing strictly
    tighter bounds and Bellman–Ford correctly flags it as a negative
    cycle (``v < v`` is unsatisfiable).  At the constraint level only
    ``k = 0`` versus ``k ≥ 1`` matters — equality and :meth:`implies`
    compare at that level.
    """

    __slots__ = ("value", "eps")

    def __init__(self, value: Fraction, strict: Union[bool, int] = False) -> None:
        self.value = value
        self.eps = int(strict)

    @property
    def strict(self) -> bool:
        return self.eps > 0

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "Bound") -> "Bound":
        return Bound(self.value + other.value, self.eps + other.eps)

    # -- tightness order ------------------------------------------------
    def __lt__(self, other: "Bound") -> bool:
        if self.value != other.value:
            return self.value < other.value
        return self.eps > other.eps

    def __le__(self, other: "Bound") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Bound") -> bool:
        return other < self

    def __ge__(self, other: "Bound") -> bool:
        return other <= self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bound):
            return NotImplemented
        return self.value == other.value and self.strict == other.strict

    def __hash__(self) -> int:
        return hash((self.value, self.strict))

    def implies(self, other: "Bound") -> bool:
        """``True`` when this bound's constraint entails ``other``'s."""
        if self.value != other.value:
            return self.value < other.value
        return self.strict or not other.strict

    def is_infeasible_cycle(self) -> bool:
        """A cycle with this total weight denies satisfiability.

        A cycle ``v ≤ v + c`` is impossible iff ``c < 0``, or ``c = 0``
        with a strict edge on the cycle (``v < v``).
        """
        return self.value < 0 or (self.value == 0 and self.strict)

    def __repr__(self) -> str:
        return f"Bound({self.value!r}, strict={self.strict})"

    def __str__(self) -> str:
        marker = "!" if self.strict else ""
        return f"{fraction_to_literal(self.value)}{marker}"


ZERO_BOUND = Bound(Fraction(0), False)

#: The distinguished node representing the constant zero (Section 3.3).
ZERO = "0"

NodeLabel = Union[str, Path]


@dataclass(frozen=True)
class NormalizedAtom:
    """One normalized constraint ``source ≤ target + bound``.

    ``source``/``target`` are absolute paths or the :data:`ZERO` node.
    This is exactly ζ(e) from the paper:
    ``ζ(e) = (sourcelabel(e) ≤ targetlabel(e) + weight(e))``.
    """

    source: NodeLabel
    target: NodeLabel
    bound: Bound

    def __str__(self) -> str:
        op = "<" if self.bound.strict else "<="
        if self.target == ZERO:
            return f"{self.source} {op} {fraction_to_literal(self.bound.value)}"
        if self.source == ZERO:
            return f"{self.target} >{'' if self.bound.strict else '='} {fraction_to_literal(-self.bound.value)}"
        return f"{self.source} {op} {self.target} + {fraction_to_literal(self.bound.value)}"


class NormalizationError(ValueError):
    """Raised for comparisons outside the normalizable fragment."""


def normalize_comparison(
    left: NodeLabel, op: str, right: Union[NodeLabel, None], constant: Fraction
) -> List[NormalizedAtom]:
    """Normalize ``left θ c`` or ``left θ right + c`` to ≤-form atoms.

    Rules (with ``R`` denoting ``right`` or the zero node):

    * ``L ≤ R + c``  → ``L → R`` with bound ``(c, ◦)``
    * ``L < R + c``  → ``L → R`` with bound ``(c, •)``
    * ``L ≥ R + c``  ⇔ ``R ≤ L − c`` → ``R → L`` with bound ``(−c, ◦)``
    * ``L > R + c``  → ``R → L`` with bound ``(−c, •)``
    * ``L = R + c``  → both ``≤`` and ``≥`` edges
    """
    target: NodeLabel = right if right is not None else ZERO
    atoms: List[NormalizedAtom] = []
    if op in ("<=", "<", "="):
        atoms.append(NormalizedAtom(left, target, Bound(constant, op == "<")))
    if op in (">=", ">", "="):
        atoms.append(NormalizedAtom(target, left, Bound(-constant, op == ">")))
    if not atoms:
        raise NormalizationError(f"operator {op!r} is outside θ")
    return atoms


def normalize_atom(
    atom: Comparison, left_path: Path, right_path: Union[Path, None]
) -> List[NormalizedAtom]:
    """Normalize a resolved WXQuery comparison.

    ``left_path``/``right_path`` are the absolute paths of the operands
    (from :class:`repro.wxquery.analyzer.ResolvedAtom`).
    """
    if atom.op == "!=":
        raise NormalizationError(f"'!=' is outside θ: {atom}")
    right: Union[Path, None] = right_path if atom.right_operand is not None else None
    return normalize_comparison(left_path, atom.op, right, atom.constant)


def interval_of(
    atoms: List[NormalizedAtom], node: NodeLabel
) -> Tuple[Union[Bound, None], Union[Bound, None]]:
    """Direct (non-derived) lower/upper bounds of ``node`` vs zero.

    Returns ``(lower, upper)`` where ``upper`` is the tightest bound
    ``node ≤ upper`` and ``lower`` the tightest ``node ≥ lower`` (stored
    as the *value* bound, i.e. already negated back).  ``None`` when no
    such direct constraint exists.  Used by selectivity estimation.
    """
    upper: Union[Bound, None] = None
    lower: Union[Bound, None] = None
    for atom in atoms:
        if atom.source == node and atom.target == ZERO:
            if upper is None or atom.bound < upper:
                upper = atom.bound
        elif atom.source == ZERO and atom.target == node:
            candidate = Bound(-atom.bound.value, atom.bound.strict)
            tighter = lower is None or candidate.value > lower.value or (
                candidate.value == lower.value and candidate.strict and not lower.strict
            )
            if tighter:
                lower = candidate
    return lower, upper
