"""Weighted directed predicate graphs (Section 3.3, Figure 3/4).

A conjunction of normalized atoms becomes a graph ``G = (V, E)``:

* each variable (absolute path) is a node, plus the constant-zero node;
* an atom ``u ≤ v + c`` is a directed edge ``u → v`` weighted ``c``
  (a strictness-aware :class:`~repro.predicates.atoms.Bound`);
* parallel edges collapse to the tightest bound.

On top of that representation the class provides the three operations
the paper uses during subscription registration:

* **satisfiability** — the conjunction is unsatisfiable iff the graph
  has a cycle whose total weight is negative (or zero with a strict
  edge); checked with Bellman–Ford from a virtual source.
* **minimization** — an edge is redundant iff the shortest path between
  its endpoints *not using the edge* is at least as tight; the minimized
  graph drops all redundant edges (Rosenkrantz–Hunt [5]).
* **closure** — all-pairs tightest derived bounds (Floyd–Warshall),
  used by the complete variant of predicate matching and by the
  selectivity estimator.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from ..xmlkit import Path
from .atoms import ZERO, Bound, NodeLabel, NormalizedAtom, ZERO_BOUND


class UnsatisfiableError(ValueError):
    """Raised when a subscription's predicate can never hold.

    The paper rejects such subscriptions at registration time.
    """


class PredicateGraph:
    """Immutable-after-build weighted digraph over path/zero nodes."""

    __slots__ = ("_edges", "_nodes", "_hash")

    def __init__(self, atoms: Iterable[NormalizedAtom] = ()) -> None:
        self._edges: Dict[Tuple[NodeLabel, NodeLabel], Bound] = {}
        self._nodes: Dict[NodeLabel, None] = {}  # insertion-ordered set
        self._hash: Optional[int] = None
        for atom in atoms:
            self.add_atom(atom)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_atom(self, atom: NormalizedAtom) -> None:
        self.add_edge(atom.source, atom.target, atom.bound)

    def add_edge(self, source: NodeLabel, target: NodeLabel, bound: Bound) -> None:
        if source == target:
            if bound.is_infeasible_cycle():
                raise UnsatisfiableError(f"self-contradictory atom: {source} < itself")
            return  # trivially true, carries no information
        self._nodes.setdefault(source)
        self._nodes.setdefault(target)
        key = (source, target)
        existing = self._edges.get(key)
        if existing is None or bound < existing:
            self._edges[key] = bound
            self._hash = None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeLabel]:
        return list(self._nodes)

    @property
    def edges(self) -> Dict[Tuple[NodeLabel, NodeLabel], Bound]:
        return dict(self._edges)

    def atoms(self) -> List[NormalizedAtom]:
        return [NormalizedAtom(s, t, b) for (s, t), b in self._edges.items()]

    def edges_at(self, node: NodeLabel) -> List[NormalizedAtom]:
        """All edges connected to ``node`` (either direction)."""
        return [
            NormalizedAtom(s, t, b)
            for (s, t), b in self._edges.items()
            if s == node or t == node
        ]

    def bound(self, source: NodeLabel, target: NodeLabel) -> Optional[Bound]:
        return self._edges.get((source, target))

    def variables(self) -> List[Path]:
        return [n for n in self._nodes if isinstance(n, Path)]

    def is_empty(self) -> bool:
        return not self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PredicateGraph):
            return NotImplemented
        if (
            self._hash is not None
            and other._hash is not None
            and self._hash != other._hash
        ):
            return False
        return self._edges == other._edges

    def __hash__(self) -> int:
        # Hashes and compares over the edge set only (node insertion
        # order is presentation, not meaning).  Cached: graphs are
        # immutable after build, and the memoized matching layer hashes
        # the same graphs once per candidate pair.
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._edges.items()))
            self._hash = cached
        return cached

    def __repr__(self) -> str:
        return f"PredicateGraph({len(self._nodes)} nodes, {len(self._edges)} edges)"

    def describe(self) -> str:
        """Human-readable listing of all atomic constraints."""
        return " and ".join(str(atom) for atom in self.atoms()) or "true"

    # ------------------------------------------------------------------
    # Satisfiability (Bellman–Ford negative-cycle detection)
    # ------------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """``False`` iff the conjunction admits no variable assignment."""
        nodes = self.nodes
        if not nodes:
            return True
        # Virtual source at distance zero to every node makes all cycles
        # reachable; |V| - 1 relaxation rounds, then one probe round.
        distance: Dict[NodeLabel, Bound] = {node: ZERO_BOUND for node in nodes}
        for _ in range(len(nodes) - 1):
            changed = False
            for (source, target), bound in self._edges.items():
                candidate = distance[source] + bound
                if candidate < distance[target]:
                    distance[target] = candidate
                    changed = True
            if not changed:
                return True
        for (source, target), bound in self._edges.items():
            if distance[source] + bound < distance[target]:
                return False
        return True

    def check_satisfiable(self) -> None:
        if not self.is_satisfiable():
            raise UnsatisfiableError(
                f"predicate is unsatisfiable: {self.describe()}"
            )

    # ------------------------------------------------------------------
    # Closure and minimization
    # ------------------------------------------------------------------
    def closure(self) -> Dict[Tuple[NodeLabel, NodeLabel], Bound]:
        """All-pairs tightest derived bounds (Floyd–Warshall).

        Requires a satisfiable graph; raises otherwise (distances would
        diverge on a negative cycle).
        """
        self.check_satisfiable()
        dist: Dict[Tuple[NodeLabel, NodeLabel], Bound] = dict(self._edges)
        nodes = self.nodes
        for via in nodes:
            for source in nodes:
                first = dist.get((source, via))
                if first is None or source == via:
                    continue
                for target in nodes:
                    if target == via or target == source:
                        continue
                    second = dist.get((via, target))
                    if second is None:
                        continue
                    combined = first + second
                    existing = dist.get((source, target))
                    if existing is None or combined < existing:
                        dist[(source, target)] = combined
        return dist

    def minimized(self) -> "PredicateGraph":
        """Drop every redundant atomic predicate.

        An edge ``u → v`` with bound ``b`` is redundant iff the remaining
        edges derive a bound from ``u`` to ``v`` at least as tight.
        Removal is *sequential* against the shrinking working set — with
        an all-at-once test, two equally tight alternative derivations
        (e.g. an equality cycle) would each justify removing the other
        and the conjunction would silently weaken.  The construction is
        performed once per subscription at registration (Section 3.3).
        """
        self.check_satisfiable()
        working: Dict[Tuple[NodeLabel, NodeLabel], Bound] = dict(self._edges)
        for key in list(working):
            bound = working.pop(key)
            derived = _shortest(working, key[0], key[1], len(self._nodes))
            if derived is None or not derived <= bound:
                working[key] = bound  # not derivable: keep
        result = PredicateGraph()
        for (source, target), bound in working.items():
            result.add_edge(source, target, bound)
        # Preserve isolated nodes for faithful node-set comparisons.
        for node in self._nodes:
            result._nodes.setdefault(node)
        return result

    # ------------------------------------------------------------------
    # Derived intervals (selectivity estimation input)
    # ------------------------------------------------------------------
    def derived_interval(
        self, node: NodeLabel
    ) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        """Tightest derived ``(lower, upper)`` numeric bounds vs zero.

        Strictness is dropped — over continuous value distributions the
        selectivity of ``<`` and ``≤`` coincide.
        """
        closure = self.closure()
        upper = closure.get((node, ZERO))
        lower = closure.get((ZERO, node))
        return (
            None if lower is None else -lower.value,
            None if upper is None else upper.value,
        )


def _shortest(
    edges: Dict[Tuple[NodeLabel, NodeLabel], Bound],
    source: NodeLabel,
    target: NodeLabel,
    node_count: int,
) -> Optional[Bound]:
    """Tightest derived ``source → target`` bound over ``edges``.

    Bellman–Ford from ``source``; callers guarantee satisfiability, so
    ``node_count`` rounds suffice for convergence.
    """
    distance: Dict[NodeLabel, Bound] = {source: ZERO_BOUND}
    for _ in range(max(node_count, 1)):
        changed = False
        for (s, t), b in edges.items():
            if s not in distance:
                continue
            candidate = distance[s] + b
            if t not in distance or candidate < distance[t]:
                distance[t] = candidate
                changed = True
        if not changed:
            break
    return distance.get(target)


def graph_from_atoms(atoms: Iterable[NormalizedAtom]) -> PredicateGraph:
    """Build, satisfiability-check, and minimize a predicate graph.

    This is the once-per-registration pipeline of Section 3.3: reject
    unsatisfiable subscriptions, then keep the minimized graph inside
    the properties.
    """
    graph = PredicateGraph(atoms)
    graph.check_satisfiable()
    return graph.minimized()
