"""The 4x4 grid evaluation scenario (paper Figure 7) as an example.

Registers 100 template-generated queries over two photon streams under
all three strategies and prints a compact comparison.

Run with::

    python examples/grid_scenario.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import run_scenario
from repro.workload.scenarios import scenario_two


def main() -> None:
    scenario = scenario_two()
    kinds = {}
    for query in scenario.queries:
        kinds[query.kind] = kinds.get(query.kind, 0) + 1
    print(f"scenario: {len(scenario.queries)} queries over "
          f"{len(scenario.sources)} streams on a 4x4 super-peer grid")
    print(f"query mix: {kinds}\n")

    print(f"{'strategy':<16} {'total MBit':>11} {'peak CPU %':>11} "
          f"{'avg reg ms':>11} {'shared':>7}")
    for strategy in ("data-shipping", "query-shipping", "stream-sharing"):
        run = run_scenario(scenario, strategy)
        shared = sum(
            1
            for result in run.registrations
            if any(
                plan.reused_id not in ("photons", "photons2")
                for plan in result.plan.inputs
            )
        )
        print(
            f"{strategy:<16} {run.total_traffic_mbit():>11.1f} "
            f"{max(run.cpu_by_peer().values()):>11.2f} "
            f"{run.registration_stats_ms()[0]:>11.0f} "
            f"{shared:>7}"
        )

    print("\n'shared' counts queries answered from a previously generated")
    print("stream rather than the original source stream.")


if __name__ == "__main__":
    main()
