"""Quickstart: register a stream and a continuous query, execute, inspect.

Run with::

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import PhotonGenerator, PhotonStreamConfig, StreamGlobe, example_topology
from repro.xmlkit import pretty

# The telescope's photon stream: 100 photons per (virtual) second,
# reproducible via the seed.
CONFIG = PhotonStreamConfig(seed=42, frequency=100.0)

# A WXQuery subscription: photons from the vela supernova-remnant region
# (the paper's Query 1).
QUERY = """
<photons>
{ for $p in stream("photons")/photons/photon
  where $p/coord/cel/ra >= 120.0 and $p/coord/cel/ra <= 138.0
  and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0
  return <vela> { $p/coord/cel/ra } { $p/coord/cel/dec }
                { $p/en } { $p/det_time } </vela> }
</photons>
"""


def main() -> None:
    # 1. A super-peer network (the paper's 8-node example topology).
    system = StreamGlobe(example_topology(), strategy="stream-sharing")

    # 2. The telescope thin-peer P0 registers its photon stream at SP4.
    system.register_stream(
        "photons",
        "photons/photon",
        lambda: PhotonGenerator(CONFIG),
        frequency=CONFIG.frequency,
        source_peer="P0",
    )

    # 3. An astrophysicist at thin-peer P1 registers the subscription.
    result = system.register_query("vela", QUERY, subscriber_peer="P1")
    plan = result.plan.inputs[0]
    print(f"registered in {result.registration_ms:.0f} ms (simulated)")
    print(f"  reusing stream : {plan.reused_id}")
    print(f"  operators at   : {plan.placement_node}")
    print(f"  pipeline       : {[spec.kind for spec in plan.delivered.pipeline]}")
    print(f"  routed via     : {' -> '.join(plan.delivered.route)}")

    # 4. Execute 30 virtual seconds of the stream and look at the result.
    metrics = system.run(duration=30.0)
    print(f"\nphotons generated : {metrics.items_generated['photons']}")
    print(f"vela matches       : {metrics.items_delivered['vela']}")
    print(f"backbone traffic   : {metrics.total_mbit():.2f} MBit")
    print("\nper-super-peer CPU load (%):")
    for peer, load in metrics.cpu_series(system.net):
        print(f"  {peer}: {load:5.2f}")

    # 5. Peek at one delivered result element.
    from repro.engine import Restructurer

    record = system.deployment.queries["vela"]
    restructurer = Restructurer(record.analyzed)
    generator = PhotonGenerator(CONFIG)
    for _ in range(1000):
        item = generator.next_item()
        ra = float(item.find(["coord", "cel", "ra"]).text)
        dec = float(item.find(["coord", "cel", "dec"]).text)
        if 120.0 <= ra <= 138.0 and -49.0 <= dec <= -40.0:
            (element,) = restructurer.build(item)
            print("\nfirst matching result element:")
            print(pretty(element))
            break


if __name__ == "__main__":
    main()
