"""The paper's running example (Sections 1-3): Queries 1-4 over the
ROSAT-like photon stream, with and without stream sharing.

Reproduces the Figure 1 → Figure 2 narrative:

* Query 1 (vela region) is pushed into the network and computed at SP4;
* Query 2 (RX J0852.0-4622, contained in vela) reuses Query 1's stream;
* Query 3 aggregates photon energies over |det_time diff 20 step 10|;
* Query 4 (|diff 60 step 40|, filtered) reuses Query 3's aggregates via
  the Figure 5 window arithmetic.

Run with::

    python examples/vela_supernova.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import PhotonGenerator, PhotonStreamConfig, StreamGlobe, example_topology

QUERIES = {
    "Q1": (
        "P1",
        """<photons>
        { for $p in stream("photons")/photons/photon
          where $p/coord/cel/ra >= 120.0 and $p/coord/cel/ra <= 138.0
          and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0
          return <vela> { $p/coord/cel/ra } { $p/coord/cel/dec }
          { $p/phc } { $p/en } { $p/det_time } </vela> }
        </photons>""",
    ),
    "Q2": (
        "P2",
        """<photons>
        { for $p in stream("photons")/photons/photon
          where $p/en >= 1.3
          and $p/coord/cel/ra >= 130.5 and $p/coord/cel/ra <= 135.5
          and $p/coord/cel/dec >= -48.0 and $p/coord/cel/dec <= -45.0
          return <rxj> { $p/coord/cel/ra } { $p/coord/cel/dec }
          { $p/en } { $p/det_time } </rxj> }
        </photons>""",
    ),
    "Q3": (
        "P3",
        """<photons>
        { for $w in stream("photons")/photons/photon
          [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0
          and coord/cel/dec >= -49.0 and coord/cel/dec <= -40.0]
          |det_time diff 20 step 10|
          let $a := avg($w/en)
          return <avg_en> { $a } </avg_en> }
        </photons>""",
    ),
    "Q4": (
        "P4",
        """<photons>
        { for $w in stream("photons")/photons/photon
          [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0
          and coord/cel/dec >= -49.0 and coord/cel/dec <= -40.0]
          |det_time diff 60 step 40|
          let $a := avg($w/en)
          where $a >= 1.3
          return <avg_en> { $a } </avg_en> }
        </photons>""",
    ),
}

CONFIG = PhotonStreamConfig(seed=20060326, frequency=100.0)


def build_system(strategy: str) -> StreamGlobe:
    system = StreamGlobe(example_topology(), strategy=strategy)
    system.register_stream(
        "photons",
        "photons/photon",
        lambda: PhotonGenerator(CONFIG),
        frequency=CONFIG.frequency,
        source_peer="P0",
    )
    for name, (peer, text) in QUERIES.items():
        system.register_query(name, text, peer)
    return system


def describe(system: StreamGlobe, title: str) -> None:
    print(f"--- {title} ---")
    for result in system.results:
        plan = result.plan.inputs[0]
        pipeline = [spec.kind for spec in plan.delivered.pipeline] or ["(exact reuse)"]
        print(
            f"{result.query}: reuse {plan.reused_id:<12s} "
            f"ops@{plan.placement_node} {pipeline} "
            f"route {' -> '.join(plan.delivered.route)}"
        )
    metrics = system.run(duration=120.0)
    print(f"backbone traffic: {metrics.total_mbit():.2f} MBit over 120 s")
    print(f"deliveries: {metrics.items_delivered}")
    print()


def main() -> None:
    print("The paper's example network: photons registered by P0 at SP4;")
    print("Q1@P1(SP1)  Q2@P2(SP7)  Q3@P3(SP3)  Q4@P4(SP0)\n")

    describe(build_system("data-shipping"), "Figure 1: no stream sharing (data shipping)")
    describe(build_system("stream-sharing"), "Figure 2: stream sharing")

    print("Expected decisions under stream sharing:")
    print(" * Q1 computed at SP4 (pushed into the network), routed SP4->SP5->SP1")
    print(" * Q2 answers from Q1's result stream (contained region + en filter)")
    print(" * Q4 answers from Q3's aggregates (3 windows of 20 per window of 60)")


if __name__ == "__main__":
    main()
