"""Churn: a super-peer crashes mid-run, the deployment self-repairs.

Runs the churn scenario (a 3x3 grid whose peer SP1 crashes at t=10 and
rejoins at t=20) twice — once fault-free, once under the fault
schedule — and reports what the crash cost: which subscriptions were
re-planned, how long recovery took in stream time, how many items were
lost while re-registering, how much extra traffic the detour routes
carried, and that every *unaffected* subscription still delivered
byte-identical results.

Run with::

    python examples/churn_scenario.py
    python examples/churn_scenario.py --trace   # also write churn_run.jsonl
                                                # + churn_trace.json

With ``--trace`` the faulted run is recorded through ``repro.obs``:
``churn_run.jsonl`` feeds ``python -m repro.obs summarize`` and
``churn_trace.json`` opens in chrome://tracing or ui.perfetto.dev,
showing the planner span tree and the per-epoch CPU/traffic series
around the crash (DESIGN.md §10).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import run_scenario
from repro.workload.scenarios import scenario_churn
from repro.xmlkit.serializer import serialize


def execute(scenario, faulted, recorder=None):
    run = run_scenario(scenario, "stream-sharing", execute=False, recorder=recorder)
    outputs = {spec.name: [] for spec in scenario.queries}
    metrics = run.system.run(
        scenario.duration,
        faults=scenario.faults if faulted else None,
        capture=lambda query, item: outputs[query].append(serialize(item)),
    )
    return run.system, metrics, outputs


def main() -> None:
    trace = "--trace" in sys.argv[1:]
    scenario = scenario_churn()
    print(f"scenario: {scenario.name}, {len(scenario.queries)} queries, "
          f"{scenario.duration:g}s of stream time")
    for line in scenario.faults.describe():
        print(f"  {line}")

    recorder = None
    if trace:
        from repro.obs import Recorder

        recorder = Recorder()

    _, _, baseline = execute(scenario, faulted=False)
    system, metrics, churned = execute(scenario, faulted=True, recorder=recorder)

    # Which subscriptions did the faults actually touch?
    probe = run_scenario(scenario, "stream-sharing", execute=False)
    affected = set()
    for event in scenario.faults.events():
        affected.update(probe.system.apply_fault(event).torn_down_queries)

    print(f"\nfaults applied:        {metrics.faults_applied}")
    print(f"re-planned queries:    {sorted(affected)}")
    print(f"recovery time:         {metrics.recovery_time_s:.3f} s (stream time)")
    print(f"items lost:            {metrics.items_lost}")
    print(f"re-routed traffic:     {metrics.rerouted_mbit():.3f} MBit "
          f"({metrics.recovery_overhead():.1%} of the run's transport)")
    print(f"unrepaired queries:    {metrics.queries_lost}")

    unaffected = [name for name in baseline if name not in affected]
    identical = all(churned[name] == baseline[name] for name in unaffected)
    print(f"\n{len(unaffected)} unaffected subscription(s) byte-identical "
          f"to the fault-free run: {identical}")
    assert identical

    survivors = system.net.super_peer_names()
    print(f"backbone after the run: {len(survivors)} super-peers "
          f"(removed: {system.net.removed_super_peer_names() or 'none'})")

    if recorder is not None:
        from repro.obs import write_chrome_trace, write_jsonl

        write_jsonl(recorder, "churn_run.jsonl", net=system.net,
                    extra={"scenario": scenario.name, "strategy": "stream-sharing",
                           "duration_s": scenario.duration})
        write_chrome_trace(recorder, "churn_trace.json")
        print(f"\ntraced: {len(recorder.spans)} spans, "
              f"{len(recorder.epochs)} epochs, {len(recorder.events)} events")
        print("  churn_run.jsonl   -> python -m repro.obs summarize churn_run.jsonl")
        print("  churn_trace.json  -> open in chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
