"""Window-based aggregate sharing in isolation (paper Figure 5).

Shows, at the operator level, how the result stream of a fine-grained
window aggregate (|det_time diff 20 step 10|) is recombined into a
coarser subscription's aggregates (|det_time diff 60 step 40|), and
verifies the recombination against a fresh aggregation.

Run with::

    python examples/window_sharing.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from fractions import Fraction

from repro.engine import (
    ReAggregateOperator,
    WindowAggregateOperator,
    wire_to_partial,
)
from repro.predicates import PredicateGraph
from repro.properties import AggregationSpec, ReAggregationSpec, WindowSpec
from repro.workload.photons import PhotonGenerator, PhotonStreamConfig
from repro.xmlkit import Path

ITEM = Path("photons/photon")


def spec(size: int, step: int) -> AggregationSpec:
    return AggregationSpec(
        function="avg",
        aggregated_path=ITEM / "en",
        window=WindowSpec("diff", Fraction(size), Fraction(step), ITEM / "det_time"),
        pre_selection=PredicateGraph(),
        result_filter=PredicateGraph(),
    )


def main() -> None:
    fine = spec(20, 10)    # Query 3's window
    coarse = spec(60, 40)  # Query 4's window

    print(f"reused window : {fine.window}")
    print(f"new window    : {coarse.window}")
    print(f"shareable     : {coarse.window.shareable_from(fine.window)}")
    print(f"windows per new window: {coarse.window.windows_per_new_window(fine.window)}")
    print("needed reused arrival indices per new window n: (n*4 + j*2, j=0..2)\n")

    photons = PhotonGenerator(PhotonStreamConfig(seed=7, frequency=100.0))
    items = []
    while photons.clock < 400.0:  # 400 det_time units ≈ 10 coarse windows
        items.append(photons.next_item())

    # Path A: the sharing plan — fine aggregation, then re-aggregation.
    fine_op = WindowAggregateOperator(fine, ITEM)
    rebuild = ReAggregateOperator(ReAggregationSpec(fine, coarse))
    shared = []
    for item in items:
        for partial in fine_op.process(item):
            shared.extend(rebuild.process(partial))

    # Path B: a fresh coarse aggregation of the same stream.
    fresh_op = WindowAggregateOperator(coarse, ITEM)
    fresh = []
    for item in items:
        fresh.extend(fresh_op.process(item))

    print(f"{'window':>7} {'shared avg':>12} {'fresh avg':>12} {'items':>6}")
    for index, (a, b) in enumerate(zip(shared, fresh)):
        pa, pb = wire_to_partial(a, "avg"), wire_to_partial(b, "avg")
        assert pa.count == pb.count
        fa, fb = pa.final("avg"), pb.final("avg")
        assert (fa is None and fb is None) or abs(fa - fb) < 1e-9
        print(f"{index:>7} {fa:>12.4f} {fb:>12.4f} {pa.count:>6}")
    print(f"\nall {len(shared)} recombined windows match the fresh aggregation exactly")

    # The avg relaxation: the same fine avg stream can serve a *sum*
    # subscription, because avg travels as (sum, count) pairs.
    sum_rebuild = ReAggregateOperator(ReAggregationSpec(fine, spec_sum()))
    fine_op2 = WindowAggregateOperator(fine, ITEM)
    sums = []
    for item in items:
        for partial in fine_op2.process(item):
            sums.extend(sum_rebuild.process(partial))
    first = wire_to_partial(sums[0], "sum")
    print(f"\navg stream reused for a sum subscription: first sum = {first.total:.3f}")


def spec_sum() -> AggregationSpec:
    return AggregationSpec(
        function="sum",
        aggregated_path=ITEM / "en",
        window=WindowSpec("diff", Fraction(60), Fraction(40), ITEM / "det_time"),
        pre_selection=PredicateGraph(),
        result_filter=PredicateGraph(),
    )


if __name__ == "__main__":
    main()
