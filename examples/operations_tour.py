"""Operating a StreamGlobe deployment: explain, audit, export, churn.

A tour of the operational API around the optimizer:

* ``explain_registration`` — why the optimizer chose a plan;
* ``validate_deployment`` — audit the network state's invariants;
* ``deployment_to_json`` — export the state for dashboards;
* ``deregister_query`` — tear down subscriptions with reference-counted
  stream garbage collection.

Run with::

    python examples/operations_tour.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import PhotonGenerator, PhotonStreamConfig, StreamGlobe, example_topology
from repro.sharing import (
    deployment_to_json,
    explain_deployment,
    explain_registration,
    validate_deployment,
)

CONFIG = PhotonStreamConfig(seed=20060326, frequency=100.0)

VELA = """<photons>{ for $p in stream("photons")/photons/photon
  where $p/coord/cel/ra >= 120.0 and $p/coord/cel/ra <= 138.0
  and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0
  return <vela> { $p/coord/cel/ra } { $p/coord/cel/dec } { $p/en } { $p/det_time } </vela> }</photons>"""

RXJ = """<photons>{ for $p in stream("photons")/photons/photon
  where $p/en >= 1.3 and $p/coord/cel/ra >= 130.5 and $p/coord/cel/ra <= 135.5
  and $p/coord/cel/dec >= -48.0 and $p/coord/cel/dec <= -45.0
  return <rxj> { $p/en } { $p/det_time } </rxj> }</photons>"""


def main() -> None:
    system = StreamGlobe(example_topology(), strategy="stream-sharing")
    system.register_stream(
        "photons", "photons/photon", lambda: PhotonGenerator(CONFIG),
        frequency=100.0, source_peer="P0",
    )

    print("=== registering two subscriptions ===\n")
    for name, text, peer in [("vela", VELA, "P1"), ("rxj", RXJ, "P2")]:
        result = system.register_query(name, text, peer)
        print(explain_registration(result, system.deployment))
        print()

    print("=== deployment audit ===")
    problems = validate_deployment(system.deployment)
    print("invariant violations:", problems or "none")
    print()
    print(explain_deployment(system.deployment))

    print("\n=== JSON export (excerpt) ===")
    text = deployment_to_json(system.deployment)
    print("\n".join(text.splitlines()[:20]))
    print(f"... ({len(text.splitlines())} lines total)")

    print("\n=== churn: the vela subscriber leaves ===")
    removed = system.deregister_query("vela")
    print(f"removed streams: {removed or 'none (all still shared)'}")
    print("note: rxj consumed vela's stream, so the stream survives:")
    print(explain_deployment(system.deployment))

    print("\n=== and then rxj leaves too ===")
    removed = system.deregister_query("rxj")
    print(f"removed streams: {sorted(removed)}")
    print("only the original source stream remains:",
          list(system.deployment.streams))
    assert validate_deployment(system.deployment) == []


if __name__ == "__main__":
    main()
