"""The constrained-capacity rejection study (paper Section 4).

Peers capped at 10 % of their CPU capacity, links at 1 MBit/s — how
many of the grid scenario's 100 queries must each strategy reject
because no overload-free evaluation plan exists?

Paper: data shipping 47, query shipping 35, stream sharing 2.

Run with::

    python examples/rejection_study.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import run_scenario
from repro.workload.scenarios import scenario_two


def main() -> None:
    scenario = scenario_two()
    print("peer CPU capped at 10%, links at 1 MBit/s; 100 queries\n")
    print(f"{'strategy':<16} {'accepted':>9} {'rejected':>9}  first rejected queries")
    for strategy in ("data-shipping", "query-shipping", "stream-sharing"):
        run = run_scenario(
            scenario,
            strategy,
            admission_control=True,
            capacity_factor=0.10,
            link_bandwidth=1_000_000.0,
            execute=False,
        )
        rejected = [r.query for r in run.registrations if not r.accepted]
        print(
            f"{strategy:<16} {run.accepted:>9} {run.rejected:>9}  "
            f"{', '.join(rejected[:5])}{' ...' if len(rejected) > 5 else ''}"
        )
    print("\npaper reference: data shipping 47, query shipping 35, stream sharing 2")


if __name__ == "__main__":
    main()
